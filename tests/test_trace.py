"""Observability: span trees, EXPLAIN ANALYZE, slow log, exporters.

The load-bearing invariants:

* tracing is off by default and the traced/untraced hot paths charge
  byte-identical simulated work;
* a query's root span carries exactly the deltas fed to
  ``EngineMetrics.record_execution`` — trace and metrics can never
  disagree;
* the span tree has the same *shape* whatever the pool kind (serial /
  thread / process), with worker-side task spans shipped back across
  the process boundary;
* ``execute(analyze=True)`` annotates the plan with the same deltas,
  bit-for-bit;
* the exporters emit valid Prometheus text / trace JSON as judged by
  the same validators CI runs.
"""

from __future__ import annotations

import json
import random

import pytest

from conftest import TEST_SCALE
from repro.engine import (
    LatencyTracker,
    Query,
    ShardedEngine,
    SlowQueryLog,
    Span,
    SpatialQueryEngine,
    WorkerPool,
    merge_snapshots,
    render_prometheus,
    validate_prometheus,
    validate_trace,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.trace import SPAN_METRIC_FIELDS
from repro.geom.rect import Rect
from repro.sim.machines import MACHINE_3


def _rects(n: int, base: int, seed: int = 3):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        out.append(Rect(x, x + 2, y, y + 2, base + i))
    return out


A_RECTS = _rects(300, 0)
B_RECTS = _rects(300, 10_000, seed=5)
QUERY = Query(relations=("a", "b"))


def _engine(**kwargs) -> SpatialQueryEngine:
    defaults = dict(
        scale=TEST_SCALE, machine=MACHINE_3, workers=2,
        pool_kind="serial", min_ship_rects=0,
    )
    defaults.update(kwargs)
    engine = SpatialQueryEngine(**defaults)
    engine.register("a", A_RECTS)
    engine.register("b", B_RECTS)
    engine.prepare()
    return engine


def _sharded(shards: int, **kwargs) -> ShardedEngine:
    defaults = dict(
        shards=shards, scale=TEST_SCALE, machine=MACHINE_3, workers=2,
        pool_kind="serial", min_ship_rects=0,
    )
    defaults.update(kwargs)
    engine = ShardedEngine(**defaults)
    engine.register("a", A_RECTS)
    engine.register("b", B_RECTS)
    engine.prepare()
    return engine


# -- tracing on/off -----------------------------------------------------------


def test_trace_off_by_default():
    with _engine() as engine:
        out = engine.execute(QUERY)
        assert engine.tracing is False
        assert out.trace is None
        assert engine.last_trace is None
        assert engine.slow_log is None
        snap = engine.metrics_snapshot()
        assert snap["slow_query_log"] is None


def test_traced_and_untraced_charge_identical_work():
    with _engine() as plain, _engine(trace=True) as traced:
        plain.execute(QUERY)
        traced.execute(QUERY)
        p, t = plain.metrics_snapshot(), traced.metrics_snapshot()
        for key in ("cpu_ops", "pages_read", "pages_written",
                    "bytes_read", "bytes_written", "sim_io_seconds",
                    "sim_cpu_seconds", "pairs_returned"):
            assert p[key] == t[key], key


# -- root span == metrics deltas ----------------------------------------------


def test_root_span_carries_metrics_deltas():
    with _engine(trace=True) as engine:
        out = engine.execute(QUERY)
        tr = out.trace
        snap = engine.metrics_snapshot()
        assert tr is not None and tr.name == "query"
        assert engine.last_trace is tr
        assert tr.cpu_ops == snap["cpu_ops"]
        assert tr.pages_read == snap["pages_read"]
        assert tr.pages_written == snap["pages_written"]
        assert tr.bytes_read == snap["bytes_read"]
        assert tr.bytes_written == snap["bytes_written"]
        assert tr.sim_io_seconds == snap["sim_io_seconds"]
        assert tr.sim_cpu_seconds == snap["sim_cpu_seconds"]
        assert tr.attrs["pairs"] == snap["pairs_returned"]
        # Phase children in serving order.
        assert [c.name for c in tr.children] == [
            "lookup", "plan", "execute", "finalize",
        ]
        # Phase spans partition the root's op charge: lookup and
        # finalize touch no simulated counters, plan + execute do.
        phase_ops = sum(c.cpu_ops for c in tr.children)
        assert phase_ops == tr.cpu_ops
        assert validate_trace(tr.to_dict()) == []


def test_hit_path_traces_and_records_latency():
    with _engine(trace=True, cache_capacity=8) as engine:
        engine.execute(QUERY)
        out = engine.execute(QUERY)
        assert out.from_cache
        tr = out.trace
        assert tr.shape() == ("query", (("lookup", ()),))
        assert tr.children[0].attrs["hit"] is True
        assert tr.wall_seconds > 0.0
        # Satellite 1: the hit recorded its *measured* wall latency.
        m = engine.metrics
        assert m.latency_count == 2
        assert min(m._latency_reservoir) > 0.0


def test_sweep_span_reconciles_task_ops():
    with _engine(trace=True) as engine:
        out = engine.execute(QUERY)
        sweep = out.trace.find("sweep")
        assert sweep is not None
        tasks = sweep.find_all("sweep-task")
        assert tasks, "partitioned plan must produce task spans"
        assert sum(t.cpu_ops for t in tasks) == sweep.attrs["ops_total"]
        assert sweep.cpu_ops == sweep.attrs["ops_total"]
        assert sweep.attrs["ops_critical"] <= sweep.attrs["ops_total"]
        assert sum(t.attrs["pairs"] for t in tasks) >= len(
            out.result.pairs
        )


# -- shape invariance across pool kinds ---------------------------------------


@pytest.mark.parametrize("kind", ["thread", "process"])
def test_span_shape_matches_serial(kind):
    with _engine(trace=True, pool_kind="serial") as serial:
        base = serial.execute(QUERY)
        base_shape = base.trace.shape()
        base_ops = base.trace.cpu_ops
    with _engine(trace=True, pool_kind=kind) as engine:
        out = engine.execute(QUERY)
        assert out.trace.shape() == base_shape
        assert out.trace.cpu_ops == base_ops
        assert out.trace.cpu_ops == engine.metrics_snapshot()["cpu_ops"]
        # Worker-side spans crossed the pool boundary with real pids.
        for task in out.trace.find("sweep").find_all("sweep-task"):
            assert task.attrs["pid"] > 0


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_trace_shape_and_reconciliation(shards):
    with _sharded(shards, trace=True) as engine:
        out = engine.execute(QUERY)
        tr = out.trace
        assert [c.name for c in tr.children] == [
            "lookup", "scatter", "gather",
        ]
        scatter = tr.find("scatter")
        assert len(scatter.children) == shards
        assert all(c.name == "shard" for c in scatter.children)
        # Summed shard spans == scatter span == root == merged metrics.
        snap = engine.metrics_snapshot()
        assert tr.cpu_ops == snap["cpu_ops"]
        assert sum(c.cpu_ops for c in scatter.children) == tr.cpu_ops
        assert sum(
            c.pages_read for c in scatter.children
        ) == snap["pages_read"]
        # Scatter latency lands in the scatter-level tracker, one
        # sample per logical query.
        assert snap["latency_count"] == 1
        assert validate_trace(tr.to_dict()) == []


# -- EXPLAIN ANALYZE ----------------------------------------------------------


def test_analyze_actuals_match_metrics_bit_for_bit():
    with _engine(trace=True) as engine:
        out = engine.execute(QUERY, analyze=True)
        a = out.plan.actuals
        snap = engine.metrics_snapshot()
        assert a is not None
        assert a.pages_read == snap["pages_read"]
        assert a.pages_written == snap["pages_written"]
        assert a.bytes_read == snap["bytes_read"]
        assert a.bytes_written == snap["bytes_written"]
        assert a.cpu_ops == snap["cpu_ops"]
        assert a.sim_io_seconds == snap["sim_io_seconds"]
        assert a.sim_cpu_seconds == snap["sim_cpu_seconds"]
        assert a.sim_wall_seconds == snap["sim_wall_seconds"]
        assert a.pairs == snap["pairs_returned"]
        assert a.spilled_rects == snap["spilled_rects"]
        text = out.plan.explain()
        assert "Actual" in text and "vs estimate" in text


def test_explain_analyze_bypasses_hit_but_fills_cache():
    with _engine(cache_capacity=8) as engine:
        engine.execute(QUERY)
        text = engine.explain_analyze(QUERY)
        assert "Actual" in text
        assert engine.metrics.queries_executed == 2
        out = engine.execute(QUERY)
        assert out.from_cache


def test_plain_execute_attaches_no_actuals():
    with _engine() as engine:
        out = engine.execute(QUERY)
        assert out.plan.actuals is None
        assert "Actual" not in out.plan.explain()


def test_estimate_error_accumulator():
    with _engine() as engine:
        engine.execute(QUERY)
        errs = engine.metrics_snapshot()["estimate_errors"]
        assert len(errs) == 1
        (strategy, err), = errs.items()
        assert err["queries"] == 1
        assert err["abs_error_seconds"] >= 0.0
        assert err["actual_io_seconds"] == (
            engine.metrics.sim_io_seconds
        )
        # A second strategy accumulates under its own key.
        engine.execute(Query(relations=("a", "b"), force="sssj"))
        errs = engine.metrics_snapshot()["estimate_errors"]
        assert errs["sssj"]["queries"] == 1
        assert errs[strategy]["queries"] == 1


# -- metrics satellites -------------------------------------------------------


def test_record_hit_requires_measured_latency():
    m = EngineMetrics()
    with pytest.raises(TypeError):
        m.record_hit(5)


def test_merge_snapshots_recomputes_derived_rates():
    a = {
        "queries_served": 3, "cache_hits": 3, "cache_hit_rate": 1.0,
        "latency_count": 3, "latency_total_seconds": 0.3,
        "latency_avg_seconds": 0.1,
        "result_cache_hits": 3, "result_cache_misses": 0,
        "result_cache_hit_rate": 1.0,
        "artifact_cache_hits": 1, "artifact_cache_misses": 0,
        "artifact_cache_hit_rate": 1.0,
    }
    b = {
        "queries_served": 1, "cache_hits": 0, "cache_hit_rate": 0.0,
        "latency_count": 1, "latency_total_seconds": 0.5,
        "latency_avg_seconds": 0.5,
        "result_cache_hits": 0, "result_cache_misses": 1,
        "result_cache_hit_rate": 0.0,
        "artifact_cache_hits": 0, "artifact_cache_misses": 3,
        "artifact_cache_hit_rate": 0.0,
    }
    merged = merge_snapshots([a, b])
    assert merged["cache_hit_rate"] == pytest.approx(3 / 4)
    assert merged["latency_avg_seconds"] == pytest.approx(0.8 / 4)
    assert merged["result_cache_hit_rate"] == pytest.approx(3 / 4)
    assert merged["artifact_cache_hit_rate"] == pytest.approx(1 / 4)


def test_latency_tracker_snapshot_keys():
    t = LatencyTracker()
    for s in (0.1, 0.2, 0.3):
        t.record(s)
    snap = t.snapshot()
    assert snap["latency_count"] == 3
    assert snap["latency_avg_seconds"] == pytest.approx(0.2)
    assert snap["latency_max_seconds"] == pytest.approx(0.3)


def test_pool_snapshot_exposes_demotions_and_clients():
    pool = WorkerPool(2, kind="thread")
    c1, c2 = pool.client(), pool.client()

    def _double(x):
        return x * 2

    c1.run_inline(_double, 1)
    c1.run_inline(_double, 2)
    c2.run_inline(_double, 3)
    snap = pool.snapshot()
    assert snap["demotions"] == 0
    per_client = {
        row["client_id"]: row for row in snap["per_client"]
    }
    assert per_client[c1.client_id]["tasks_inline"] == 2
    assert per_client[c2.client_id]["tasks_inline"] == 1
    assert sum(
        row["tasks_inline"] for row in snap["per_client"]
    ) == snap["tasks_inline"]
    assert c1.snapshot()["client_id"] == c1.client_id
    c1.release()
    c2.release()


def test_engine_snapshot_surfaces_pool_clients():
    with _sharded(2, trace=True) as engine:
        engine.execute(QUERY)
        snap = engine.metrics_snapshot()
        pool = snap["worker_pool"]
        assert pool["demotions"] == 0
        assert len(pool["per_client"]) == 2
        assert sum(
            row["tiles_inline"] + row["tiles_dispatched"]
            for row in pool["per_client"]
        ) == pool["tiles_inline"] + pool["tiles_dispatched"]


# -- slow-query log -----------------------------------------------------------


def test_slow_query_log_keeps_worst():
    log = SlowQueryLog(capacity=2)
    assert log.offer("q1", 0.010)
    assert log.offer("q2", 0.030)
    assert log.offer("q3", 0.020)
    assert not log.offer("q4", 0.005)
    walls = [e["wall_seconds"] for e in log.entries()]
    assert walls == [0.030, 0.020]
    assert log.offered == 4 and log.admitted == 3
    assert len(log) == 2
    assert json.loads(log.to_json())[0]["query"] == "q2"


def test_slow_query_log_threshold_and_capacity_validation():
    log = SlowQueryLog(capacity=4, threshold_seconds=0.1)
    assert not log.offer("fast", 0.05)
    assert log.offer("slow", 0.2)
    assert len(log) == 1
    with pytest.raises(ValueError):
        SlowQueryLog(capacity=0)


def test_engine_slow_log_carries_traces():
    with _engine(trace=True, slow_log_capacity=4) as engine:
        engine.execute(QUERY)
        engine.execute(QUERY)  # hit — logged too, without a plan
        entries = engine.slow_log.entries()
        assert len(entries) == 2
        for entry in entries:
            assert entry["trace"] is not None
            assert validate_trace(entry["trace"]) == []
        assert any(e["from_cache"] for e in entries)
        snap = engine.metrics_snapshot()
        assert snap["slow_query_log"]["admitted"] == 2


# -- exporters ----------------------------------------------------------------


def test_prometheus_export_is_valid_and_labelled():
    with _engine(trace=True, slow_log_capacity=4) as engine:
        engine.execute(QUERY)
        text = render_prometheus(engine.metrics_snapshot())
        assert validate_prometheus(text) == []
        assert "repro_engine_queries_served 1" in text
        assert "repro_engine_cpu_ops" in text
        assert 'repro_engine_per_strategy{strategy="' in text
        assert 'repro_engine_estimate_errors_queries{strategy="' in text
        assert "repro_engine_worker_pool_tasks_inline" in text


def test_prometheus_export_sharded_snapshot():
    with _sharded(2, trace=True) as engine:
        engine.execute(QUERY)
        text = render_prometheus(engine.metrics_snapshot())
        assert validate_prometheus(text) == []
        assert 'repro_engine_worker_pool_per_client_tasks_inline{' in text


def test_validators_reject_malformed_input():
    assert validate_prometheus("") != []
    assert validate_prometheus("not a sample line\n") != []
    assert validate_prometheus("ok_gauge 1\n") == []
    assert validate_prometheus("ok_gauge 1\n", prefix="ok") == []
    assert validate_prometheus("ok_gauge 1\n", prefix="other") != [], (
        "a prefix pin must reject samples outside the namespace"
    )
    bad = Span("x").to_dict()
    bad["cpu_ops"] = -1
    assert validate_trace(bad) != []
    assert validate_trace({"name": 3}) != []


# -- CLI ----------------------------------------------------------------------


def test_serve_bench_trace_flags_and_metrics_cli(tmp_path, capsys):
    from repro.experiments.cli import main as cli_main

    metrics_path = tmp_path / "metrics.prom"
    rc = cli_main([
        "serve-bench", "--dataset", "NJ", "--queries", "6",
        "--scale", "quick", "--pool-kind", "serial",
        "--trace", "--slow-log", "3", "--metrics-out",
        str(metrics_path), "--json",
    ])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert validate_trace(report["trace"]) == []
    assert 0 < len(report["slow_queries"]) <= 3
    prom = metrics_path.read_text()
    assert validate_prometheus(prom) == []

    report_path = tmp_path / "report.json"
    report_path.write_text(json.dumps(report, default=str))
    rc = cli_main(["metrics", "--from", str(report_path)])
    assert rc == 0
    text = capsys.readouterr().out
    assert validate_prometheus(text) == []
    assert "repro_engine_queries_served" in text

    json_out = tmp_path / "snap.json"
    rc = cli_main([
        "metrics", "--from", str(report_path), "--format", "json",
        "--out", str(json_out),
    ])
    assert rc == 0
    assert "queries_served" in json.loads(json_out.read_text())
