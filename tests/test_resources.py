"""The memory-governance layer: budget, grants, spill, size-aware cache."""

from __future__ import annotations

import pytest

from repro.core.pbsm import SpillablePartition, TileAllowance
from repro.data.generator import uniform_rects
from repro.engine.cache import ResultCache, approx_result_bytes
from repro.engine.resources import ResourceBudget
from repro.geom.rect import RECT_BYTES, Rect
from repro.storage.buffer_pool import BufferPool
from repro.storage.sort import MIN_SORT_RECTS, sort_stream_by_ylo
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


class TestResourceBudget:
    def test_acquire_clamps_to_free_bytes(self):
        budget = ResourceBudget(1000)
        g1 = budget.acquire("a", 600)
        assert g1.bytes == 600
        g2 = budget.acquire("b", 600)
        assert g2.bytes == 400  # clamped to what is left
        assert budget.in_use_bytes == 1000
        assert budget.available_bytes == 0

    def test_minimum_overcommits_and_counts(self):
        budget = ResourceBudget(100)
        budget.acquire("a", 100)
        g = budget.acquire("b", 500, minimum=50)
        assert g.bytes == 50
        assert budget.overcommits == 1
        assert budget.in_use_bytes == 150  # over the total, by design

    def test_charge_release_and_high_water(self):
        budget = ResourceBudget(1000)
        g = budget.acquire("sort", 200)
        g.charge(300)
        assert budget.in_use_bytes == 500
        assert budget.high_water_bytes == 500
        g.release(400)
        assert budget.in_use_bytes == 100
        # Partial release keeps the grant alive.
        g.charge(50)
        assert budget.in_use_bytes == 150
        g.release()
        assert budget.in_use_bytes == 0
        # Closed grants are inert.
        g.charge(999)
        assert budget.in_use_bytes == 0
        assert budget.high_water_bytes == 500

    def test_per_category_accounting(self):
        budget = ResourceBudget(1000)
        g1 = budget.acquire("tiles", 300)
        budget.acquire("sort", 200)
        snap = budget.snapshot()
        assert snap["by_category"] == {"tiles": 300, "sort": 200}
        g1.release()
        snap = budget.snapshot()
        assert snap["by_category"] == {"sort": 200}
        assert snap["high_water_by_category"]["tiles"] == 300

    def test_try_extend_respects_free_bytes(self):
        budget = ResourceBudget(1000)
        g = budget.acquire("tiles", 600)
        assert g.try_extend(300)
        assert g.held == 900 and g.bytes == 900
        assert not g.try_extend(200)  # only 100 free
        assert budget.in_use_bytes == 900
        g.release()
        assert budget.in_use_bytes == 0

    def test_context_manager_releases(self):
        budget = ResourceBudget(1000)
        with budget.acquire("tmp", 400) as g:
            assert budget.in_use_bytes == 400
            assert g.held == 400
        assert budget.in_use_bytes == 0

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            ResourceBudget(0)


class TestSpillablePartition:
    def test_unbudgeted_never_spills(self, disk):
        part = SpillablePartition(disk, "p0")
        rects = uniform_rects(50, UNIT, 0.05, seed=1)
        for r in rects:
            part.append(r)
        assert part.spilled_rects == 0
        assert part.materialize() == list(rects)

    def test_spills_beyond_allowance_and_rereads(self, disk):
        allowance = TileAllowance(10 * RECT_BYTES)
        part = SpillablePartition(disk, "p0", allowance=allowance)
        rects = uniform_rects(50, UNIT, 0.05, seed=2)
        for r in rects:
            part.append(r)
        assert part.spilled_rects == 40
        assert part.spilled_bytes == 40 * RECT_BYTES
        assert len(part.in_memory) == 10
        # Re-read preserves append order and charges disk reads.
        reads_before = disk.env.page_reads
        assert part.materialize() == list(rects)
        assert disk.env.page_reads > reads_before
        part.free()

    def test_allowance_is_shared_across_partitions(self, disk):
        allowance = TileAllowance(10 * RECT_BYTES)
        p0 = SpillablePartition(disk, "p0", allowance=allowance)
        p1 = SpillablePartition(disk, "p1", allowance=allowance)
        rects = uniform_rects(10, UNIT, 0.05, seed=3)
        for r in rects:
            p0.append(r)
        assert p0.spilled_rects == 0
        for r in rects:
            p1.append(r)
        # p0 consumed the whole shared allowance first.
        assert p1.spilled_rects == 10

    def test_allowance_extends_from_grant_before_spilling(self, disk):
        budget = ResourceBudget(100_000)
        grant = budget.acquire("tiles", 5 * RECT_BYTES)
        allowance = TileAllowance(grant.bytes, grant=grant)
        part = SpillablePartition(disk, "p0", allowance=allowance)
        rects = uniform_rects(50, UNIT, 0.05, seed=5)
        for r in rects:
            part.append(r)
        # Plenty of free budget: the grant grew instead of spilling.
        assert part.spilled_rects == 0
        assert grant.held >= 50 * RECT_BYTES
        grant.release()
        assert budget.in_use_bytes == 0


class TestBudgetedStorage:
    def test_buffer_pool_charges_resident_pages(self, store):
        budget = ResourceBudget(100 * TEST_SCALE.index_page_bytes)
        pool = BufferPool(store, capacity_pages=4, budget=budget)
        pages = store.allocate_many(6)
        for p in pages:
            store.write(p, payload=("x", p))
        for p in pages:
            pool.request(p)
        # Eviction keeps the charge at capacity, not at request count.
        assert budget.used_by("buffer_pool") == (
            4 * TEST_SCALE.index_page_bytes
        )
        pool.clear()
        assert budget.used_by("buffer_pool") == 0

    def test_external_sort_adapts_to_budget(self, disk):
        # A budget with almost nothing free forces the sort down to its
        # floor chunk size: more runs, same output.
        budget = ResourceBudget(10_000)
        hog = budget.acquire("hog", 10_000)
        disk.env.budget = budget
        rects = uniform_rects(300, UNIT, 0.02, seed=4)
        stream = Stream.from_rects(disk, rects, name="in")
        out = sort_stream_by_ylo(stream, disk)
        assert sorted(out.scan(), key=lambda r: r.ylo) == list(out.scan())
        assert len(out) == 300
        # The grant was the overcommitted floor, then fully released.
        assert budget.overcommits == 1
        assert budget.used_by("sort") == 0
        assert budget.high_water_by_category["sort"] == (
            MIN_SORT_RECTS * RECT_BYTES
        )
        hog.release()


class TestSizeAwareCache:
    def test_evicts_by_bytes_not_count(self):
        cache = ResultCache(capacity=100, max_bytes=3000)
        cache.put("k1", "v1", nbytes=1000)
        cache.put("k2", "v2", nbytes=1000)
        cache.put("k3", "v3", nbytes=1000)
        assert len(cache) == 3 and cache.bytes_used == 3000
        cache.put("k4", "v4", nbytes=1500)
        # k1 and k2 (LRU) must go to make room.
        assert cache.get("k1") is None and cache.get("k2") is None
        assert cache.get("k3") == "v3" and cache.get("k4") == "v4"
        assert cache.evictions == 2
        assert cache.bytes_used == 2500

    def test_oversized_result_is_never_cached(self):
        cache = ResultCache(capacity=100, max_bytes=1000)
        cache.put("big", "v", nbytes=5000)
        assert len(cache) == 0
        assert cache.oversized_rejections == 1

    def test_replacement_updates_bytes(self):
        cache = ResultCache(capacity=100, max_bytes=10_000)
        cache.put("k", "v1", nbytes=4000)
        cache.put("k", "v2", nbytes=1000)
        assert cache.bytes_used == 1000
        assert len(cache) == 1

    def test_invalidation_releases_bytes(self):
        cache = ResultCache(capacity=8, max_bytes=50_000)
        key = ("q", (("a", 1),))
        cache.put(key, "v", nbytes=2000)
        assert cache.bytes_used == 2000
        assert cache.invalidate_relation("a") == 1
        assert cache.bytes_used == 0

    def test_approx_bytes_scales_with_pairs(self):
        class FakeResult:
            def __init__(self, n):
                self.pairs = [(i, i + 1) for i in range(n)]

        small = approx_result_bytes(FakeResult(10))
        large = approx_result_bytes(FakeResult(1000))
        assert large > 50 * small
