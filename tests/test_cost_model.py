"""Cost model: the ~60% crossover and the strategy estimates (§6.3)."""

import pytest

from repro.core.cost_model import CostModel, JoinCostEstimate
from repro.sim.machines import MACHINE_1, MACHINE_2, MACHINE_3
from repro.sim.scale import DEFAULT_SCALE, PAPER_SCALE


class TestPrimitives:
    def test_random_to_sequential_ratio_about_10_on_machine_1(self):
        # Section 6.3 assumes "a random read takes on average 10 times
        # as much time as a sequential read" — that is Machine 1's disk
        # at 8 KB pages (8 ms positioning vs 0.8 ms transfer).
        model = CostModel(MACHINE_1, PAPER_SCALE)
        assert 8.0 <= model.random_to_sequential_ratio <= 15.0

    def test_modern_disk_ratio_much_higher(self):
        # The Cheetah transfers 8 KB in ~0.2 ms against 7.7 ms
        # positioning: the index path is relatively *more* expensive on
        # newer disks, strengthening the paper's conclusion.
        model = CostModel(MACHINE_3, PAPER_SCALE)
        assert model.random_to_sequential_ratio > 25.0

    def test_ratio_preserved_under_scaling(self):
        for machine in (MACHINE_1, MACHINE_2, MACHINE_3):
            paper = CostModel(machine, PAPER_SCALE).random_to_sequential_ratio
            scaled = CostModel(
                machine, DEFAULT_SCALE
            ).random_to_sequential_ratio
            assert scaled == pytest.approx(paper, rel=0.01)

    def test_crossover_near_60_percent_on_machine_1(self):
        # 6n sequential vs r*f*n random with r ~ 10 -> f* ~ 0.6.
        model = CostModel(MACHINE_1, PAPER_SCALE)
        assert 0.45 <= model.crossover_fraction() <= 0.75

    def test_crossover_never_above_one(self):
        for machine in (MACHINE_1, MACHINE_2, MACHINE_3):
            model = CostModel(machine, DEFAULT_SCALE)
            assert 0.0 < model.crossover_fraction() <= 1.0


class TestEstimates:
    def _model(self):
        return CostModel(MACHINE_3, DEFAULT_SCALE)

    def test_sssj_scales_linearly_with_bytes(self):
        m = self._model()
        one = m.estimate_sssj(1_000_000, 0)
        two = m.estimate_sssj(2_000_000, 0)
        assert two.io_seconds == pytest.approx(2 * one.io_seconds)

    def test_pq_indexed_scales_with_fraction(self):
        m = self._model()
        full = m.estimate_pq_indexed(1000, 100, 1.0, 1.0)
        half = m.estimate_pq_indexed(1000, 100, 0.5, 0.5)
        assert half.io_seconds == pytest.approx(full.io_seconds / 2)

    def test_index_wins_below_crossover_loses_above(self):
        """The paper's decision rule, end-to-end: compare PQ(index) with
        SSSJ while sweeping the participating fraction."""
        m = self._model()
        pages = 5000
        data_bytes = pages * DEFAULT_SCALE.index_page_bytes
        sssj = m.estimate_sssj(data_bytes // 2, data_bytes // 2)
        f_star = m.crossover_fraction()
        below = m.estimate_pq_indexed(pages // 2, pages // 2,
                                      f_star * 0.5, f_star * 0.5)
        above = m.estimate_pq_indexed(pages // 2, pages // 2,
                                      min(1.0, f_star * 1.5),
                                      min(1.0, f_star * 1.5))
        assert below.io_seconds < sssj.io_seconds
        assert above.io_seconds > sssj.io_seconds

    def test_mixed_estimate_between_parts(self):
        m = self._model()
        mixed = m.estimate_pq_mixed(1000, 0.5, 1_000_000)
        index_only = m.estimate_pq_indexed(1000, 0, 0.5, 0)
        sort_only = m.estimate_sssj(1_000_000, 0)
        assert mixed.io_seconds == pytest.approx(
            index_only.io_seconds + sort_only.io_seconds
        )

    def test_st_estimate_positive_and_below_pq_random(self):
        # ST rides the sequential layout, so its default estimate sits
        # below pricing every page at random cost.
        m = self._model()
        st = m.estimate_st(1000, 1000)
        pq = m.estimate_pq_indexed(1000, 1000)
        assert 0 < st.io_seconds < pq.io_seconds

    def test_estimates_ordered_by_lt(self):
        a = JoinCostEstimate("x", 1.0)
        b = JoinCostEstimate("y", 2.0)
        assert a < b
        assert min([b, a]).strategy == "x"

    def test_machine_sensitivity(self):
        # The same workload is cheaper on the Cheetah than the Medalist.
        w = (10_000_000, 10_000_000)
        slow = CostModel(MACHINE_2, DEFAULT_SCALE).estimate_sssj(*w)
        fast = CostModel(MACHINE_3, DEFAULT_SCALE).estimate_sssj(*w)
        assert fast.io_seconds < slow.io_seconds
