"""Simulation substrate: scale configs, machine observers, environment."""

import pytest

from repro.sim.env import SimEnv, null_env
from repro.sim.machines import (
    ALL_MACHINES,
    MACHINE_1,
    MACHINE_2,
    MACHINE_3,
    MachineObserver,
    WRITE_PENALTY,
)
from repro.sim.scale import DEFAULT_SCALE, PAPER_SCALE, ScaleConfig


class TestScaleConfig:
    def test_paper_scale_constants(self):
        assert PAPER_SCALE.index_page_bytes == 8192
        assert PAPER_SCALE.stream_block_bytes == 512 * 1024
        assert PAPER_SCALE.memory_bytes == 24 * 1024 * 1024
        assert PAPER_SCALE.buffer_pool_bytes == 22 * 1024 * 1024
        assert PAPER_SCALE.latency_scale == 1.0

    def test_default_scale_page_regimes(self):
        # Page counts shrink by scale/16 when pages shrink 8192 -> 512.
        assert DEFAULT_SCALE.page_scale == DEFAULT_SCALE.scale / 16
        assert DEFAULT_SCALE.latency_scale == 16.0

    def test_scaled_count_floor(self):
        assert DEFAULT_SCALE.scaled_count(1) == 16  # never degenerates

    def test_scaled_count_rounding(self):
        assert DEFAULT_SCALE.scaled_count(414_442) == round(414_442 / 256)

    def test_memory_rects(self):
        assert DEFAULT_SCALE.memory_rects == DEFAULT_SCALE.memory_bytes // 20

    def test_buffer_pool_pages(self):
        cfg = ScaleConfig()
        assert (
            cfg.buffer_pool_pages == cfg.buffer_pool_bytes // cfg.index_page_bytes
        )


class TestMachineSpecs:
    def test_table1_values(self):
        assert MACHINE_1.cpu.mhz == 50.0
        assert MACHINE_1.disk.avg_read_ms == 8.0
        assert MACHINE_1.disk.peak_mb_s == 10.0
        assert MACHINE_1.disk.buffer_kb == 512
        assert MACHINE_2.cpu.mhz == 300.0
        assert MACHINE_2.disk.buffer_kb == 128  # the small track buffer
        assert MACHINE_3.cpu.mhz == 500.0
        assert MACHINE_3.disk.avg_read_ms == 7.7

    def test_cpu_speed_ordering(self):
        # Per-op cost strictly decreases with clock rate.
        assert (
            MACHINE_1.cpu.seconds_per_op
            > MACHINE_2.cpu.seconds_per_op
            > MACHINE_3.cpu.seconds_per_op
        )


class TestObserverPricing:
    def _obs(self, machine=MACHINE_1, latency_scale=1.0):
        return MachineObserver(machine, latency_scale=latency_scale)

    def test_first_read_is_random(self):
        obs = self._obs()
        obs.on_read(0, 8192)
        assert obs.reads_random == 1
        assert obs.io_seconds > obs.spec.disk.transfer_seconds(8192)

    def test_consecutive_reads_are_sequential(self):
        obs = self._obs()
        obs.on_read(0, 8192)
        obs.on_read(8192, 8192)
        obs.on_read(16384, 8192)
        assert obs.reads_sequential == 2

    def test_random_jump_pays_latency(self):
        obs = self._obs()
        obs.on_read(0, 8192)
        base = obs.io_seconds
        obs.on_read(10_000_000, 8192)
        assert obs.reads_random == 2
        assert obs.io_seconds - base >= obs.spec.disk.avg_read_ms / 1e3

    def test_track_buffer_hit(self):
        obs = self._obs()  # 512 KB readahead window
        obs.on_read(0, 8192)
        obs.on_read(8192 * 4, 8192)  # skips 3 pages, still in window
        assert obs.reads_buffered == 1
        assert obs.reads_random == 1

    def test_small_track_buffer_misses(self):
        obs = self._obs(MACHINE_2)  # 128 KB window
        obs.on_read(0, 8192)
        obs.on_read(200 * 1024, 8192)  # beyond the Medalist's window
        assert obs.reads_buffered == 0
        assert obs.reads_random == 2

    def test_buffered_read_charges_skipped_bytes(self):
        obs = self._obs()
        obs.on_read(0, 8192)
        t0 = obs.io_seconds
        obs.on_read(8192 * 3, 8192)  # skips 2 pages
        got = obs.io_seconds - t0
        want = obs.spec.disk.transfer_seconds(8192 * 3)
        assert got == pytest.approx(want)

    def test_sequential_write_cost_is_1_5x_read(self):
        r = self._obs()
        w = self._obs()
        r.on_read(0, 8192)
        r.on_read(8192, 8192)
        w.on_write(0, 8192)
        w.on_write(8192, 8192)
        seq_read = r.io_seconds - (r.spec.disk.avg_read_ms / 1e3)
        seq_write = w.io_seconds - (w.spec.disk.avg_read_ms / 1e3)
        assert seq_write == pytest.approx(WRITE_PENALTY * seq_read / 1.0)

    def test_read_segments_survive_writes(self):
        # Segmented disk caches keep read segments across unrelated
        # writes; only the arm position moves.
        obs = self._obs()
        obs.on_read(0, 8192)
        obs.on_write(50_000_000, 8192)
        obs.on_read(8192, 8192)  # still inside the read segment
        assert obs.reads_buffered == 1

    def test_segment_count_limits_interleaved_streams(self):
        # More concurrent streams than cache segments: the oldest
        # stream's window is evicted and its next access is random.
        obs = self._obs()  # 4 segments
        streams = [i * 100_000_000 for i in range(6)]
        for base in streams:
            obs.on_read(base, 8192)
        assert obs.reads_random == 6
        # The first two streams lost their segments.
        obs.on_read(streams[0] + 8192, 8192)
        assert obs.reads_random == 7
        # The most recent stream still has its window.
        obs.on_read(streams[5] + 8192 * 2, 8192)
        assert obs.reads_buffered == 1

    def test_two_interleaved_streams_both_ride_cache(self):
        # The ST pattern: alternating between two index regions.  With a
        # segmented cache both alternating streams stay buffered.
        obs = self._obs()
        obs.on_read(0, 8192)
        obs.on_read(100_000_000, 8192)
        for i in range(1, 5):
            obs.on_read(i * 8192, 8192)
            obs.on_read(100_000_000 + i * 8192, 8192)
        assert obs.reads_random == 2
        assert obs.reads_buffered == 8

    def test_estimated_charges_every_request_at_random_rate(self):
        obs = self._obs()
        for i in range(10):
            obs.on_read(i * 8192, 8192)
        # 1 random + 9 sequential observed, but the naive estimate
        # prices all 10 at avg_read.
        assert obs.reads_sequential == 9
        latency = obs.spec.disk.avg_read_ms / 1e3
        assert obs.estimated_io_seconds >= 10 * latency
        assert obs.io_seconds < obs.estimated_io_seconds

    def test_latency_scale_shrinks_positioning_cost(self):
        fast = self._obs(latency_scale=16.0)
        slow = self._obs(latency_scale=1.0)
        fast.on_read(10_000, 512)
        slow.on_read(10_000, 512)
        assert fast.io_seconds < slow.io_seconds

    def test_cpu_accounting(self):
        obs = self._obs()
        obs.on_cpu("sweep", 1000)
        obs.on_cpu("sweep", 500)
        obs.on_cpu("sort", 100)
        assert obs.cpu_ops == {"sweep": 1500, "sort": 100}
        assert obs.cpu_seconds == pytest.approx(
            1600 * obs.spec.cpu.seconds_per_op
        )

    def test_snapshot_fields(self):
        obs = self._obs()
        obs.on_read(0, 100)
        snap = obs.snapshot()
        for key in ("machine", "cpu_seconds", "io_seconds",
                    "observed_seconds", "estimated_seconds",
                    "reads_random", "reads_sequential"):
            assert key in snap


class TestSimEnv:
    def test_charge_reaches_all_observers(self):
        env = SimEnv(machines=ALL_MACHINES)
        env.charge("x", 100)
        assert env.cpu_ops == 100
        assert all(o.cpu_ops["x"] == 100 for o in env.observers)

    def test_negative_or_zero_charge_ignored(self):
        env = SimEnv(machines=ALL_MACHINES)
        env.charge("x", 0)
        env.charge("x", -5)
        assert env.cpu_ops == 0

    def test_io_counters(self):
        env = SimEnv(machines=ALL_MACHINES)
        env.io_read(0, 512)
        env.io_write(512, 512)
        assert env.page_reads == 1 and env.page_writes == 1
        assert env.bytes_read == 512 and env.bytes_written == 512

    def test_reset_counters(self):
        env = SimEnv(machines=ALL_MACHINES)
        env.io_read(0, 512)
        env.charge("x", 10)
        env.reset_counters()
        assert env.page_reads == 0 and env.cpu_ops == 0
        assert all(o.cpu_seconds == 0.0 for o in env.observers)

    def test_observer_for(self):
        env = SimEnv(machines=ALL_MACHINES)
        assert env.observer_for(MACHINE_2).spec.name == MACHINE_2.name
        with pytest.raises(KeyError):
            null_env().observer_for(MACHINE_1)

    def test_null_env_counts_without_observers(self):
        env = null_env()
        env.io_read(0, 512)
        env.charge("x", 7)
        assert env.page_reads == 1 and env.cpu_ops == 7
        assert env.observers == []
