"""R-tree persistence: byte-exact round trips through the file format."""

import struct

import pytest

from repro.data.generator import clustered_rects, uniform_rects
from repro.geom.rect import Rect
from repro.rtree.bulk_load import bulk_load
from repro.rtree.insert import RTreeBuilder
from repro.rtree.persist import MAGIC, load_rtree, save_rtree
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def fresh_store():
    return PageStore(Disk(make_env()), TEST_SCALE.index_page_bytes)


def roundtrip(tree, tmp_path, into=None):
    path = str(tmp_path / "tree.rpqt")
    save_rtree(tree, path)
    return load_rtree(into or fresh_store(), path), path


class TestRoundTrip:
    def test_structure_preserved(self, tmp_path):
        rects = uniform_rects(400, UNIT, 0.02, seed=1)
        tree = bulk_load(fresh_store(), rects)
        loaded, _ = roundtrip(tree, tmp_path)
        loaded.validate()
        assert loaded.height == tree.height
        assert loaded.num_objects == tree.num_objects
        assert loaded.page_count == tree.page_count

    def test_data_rects_identical(self, tmp_path):
        # Generators produce float32-representable coordinates, so the
        # float32 file format loses nothing.
        rects = clustered_rects(300, UNIT, 0.01, seed=2)
        tree = bulk_load(fresh_store(), rects)
        loaded, _ = roundtrip(tree, tmp_path)
        original = sorted(tree.iter_all())
        restored = sorted(loaded.iter_all())
        assert original == restored

    def test_dynamic_tree_roundtrip(self, tmp_path):
        builder = RTreeBuilder(fresh_store())
        builder.extend(uniform_rects(250, UNIT, 0.02, seed=3))
        tree = builder.finish()
        loaded, _ = roundtrip(tree, tmp_path)
        loaded.validate()
        assert sorted(loaded.iter_all()) == sorted(tree.iter_all())

    def test_single_node_tree(self, tmp_path):
        tree = bulk_load(fresh_store(), [UNIT._replace(rid=42)])
        loaded, _ = roundtrip(tree, tmp_path)
        assert [r.rid for r in loaded.iter_all()] == [42]

    def test_load_into_nonempty_store_remaps_ids(self, tmp_path):
        rects = uniform_rects(200, UNIT, 0.02, seed=4)
        tree = bulk_load(fresh_store(), rects)
        target = fresh_store()
        # Occupy some pages first; loaded ids must not collide.
        other = bulk_load(target, uniform_rects(100, UNIT, 0.02, seed=5))
        loaded, _ = roundtrip(tree, tmp_path, into=target)
        loaded.validate()
        other.validate()
        assert set(
            pid for lvl in loaded.pages_per_level for pid in lvl
        ).isdisjoint(
            pid for lvl in other.pages_per_level for pid in lvl
        )

    def test_queries_agree_after_reload(self, tmp_path):
        rects = uniform_rects(300, UNIT, 0.02, seed=6)
        tree = bulk_load(fresh_store(), rects)
        loaded, _ = roundtrip(tree, tmp_path)
        window = Rect(0.25, 0.6, 0.1, 0.5, 0)
        assert sorted(r.rid for r in tree.query(window)) == sorted(
            r.rid for r in loaded.query(window)
        )


class TestFormatValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.rpqt"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(ValueError, match="not an R-tree file"):
            load_rtree(fresh_store(), str(path))

    def test_wrong_page_size_rejected(self, tmp_path):
        tree = bulk_load(fresh_store(), uniform_rects(50, UNIT, 0.02))
        path = str(tmp_path / "t.rpqt")
        save_rtree(tree, path)
        other = PageStore(Disk(make_env()), 512)  # different page size
        with pytest.raises(ValueError, match="page size"):
            load_rtree(other, path)

    def test_truncated_file_rejected(self, tmp_path):
        tree = bulk_load(fresh_store(), uniform_rects(200, UNIT, 0.02))
        path = tmp_path / "t.rpqt"
        save_rtree(tree, str(path))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - TEST_SCALE.index_page_bytes // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_rtree(fresh_store(), str(path))

    def test_file_starts_with_magic(self, tmp_path):
        tree = bulk_load(fresh_store(), [UNIT])
        path = tmp_path / "t.rpqt"
        save_rtree(tree, str(path))
        assert path.read_bytes()[:4] == MAGIC

    def test_pages_are_page_aligned(self, tmp_path):
        tree = bulk_load(fresh_store(), uniform_rects(100, UNIT, 0.02))
        path = tmp_path / "t.rpqt"
        save_rtree(tree, str(path))
        size = path.stat().st_size
        # header + level table + page_count * page_bytes
        assert (size - _header_and_table_size(tree)) % (
            TEST_SCALE.index_page_bytes
        ) == 0


def _header_and_table_size(tree) -> int:
    header = struct.calcsize("<4sIIIQII")
    table = sum(4 + 4 * len(lvl) for lvl in tree.pages_per_level)
    return header + table
