"""Shared fixtures: a small simulated machine room, tiny datasets, and
the differential-testing harness (brute force vs. single engine vs.
sharded scatter/gather)."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

import pytest

from repro.core.brute import brute_force_pairs
from repro.geom.rect import Rect, intersection, mbr_of
from repro.sim.env import SimEnv
from repro.sim.machines import ALL_MACHINES, MACHINE_3
from repro.sim.scale import ScaleConfig
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

#: A small-memory scale so tests exercise external behaviour (run
#: formation, pool eviction, partitioning) on tiny inputs.
TEST_SCALE = ScaleConfig(
    scale=1024,
    index_page_bytes=256,
    stream_block_bytes=512,
    memory_bytes=4096,          # 204 rectangles
    buffer_pool_bytes=4096,     # 16 pages
    name="test",
)


@pytest.fixture
def env() -> SimEnv:
    return SimEnv(scale=TEST_SCALE, machines=ALL_MACHINES)


@pytest.fixture
def disk(env) -> Disk:
    return Disk(env)


@pytest.fixture
def store(disk) -> PageStore:
    return PageStore(disk, TEST_SCALE.index_page_bytes)


@pytest.fixture
def unit_square() -> Rect:
    return Rect(0.0, 1.0, 0.0, 1.0, 0)


def make_env(scale: ScaleConfig = TEST_SCALE) -> SimEnv:
    """Non-fixture variant for hypothesis tests (fresh per example)."""
    return SimEnv(scale=scale, machines=ALL_MACHINES)


# -- seeded adversarial dataset generators (no new deps) ---------------------


def _uniform(rng: random.Random, n: int, id_base: int = 0):
    out = []
    for i in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * 0.04, rng.random() * 0.04
        out.append(Rect(x, min(1.0, x + w), y, min(1.0, y + h),
                        id_base + i))
    return out


def _clustered(rng: random.Random, n: int, id_base: int = 0):
    """A few dense gaussian blobs — hot tiles, cold elsewhere."""
    centers = [(rng.random(), rng.random()) for _ in range(3)]
    out = []
    for i in range(n):
        cx, cy = centers[i % len(centers)]
        x = min(0.98, max(0.0, rng.gauss(cx, 0.03)))
        y = min(0.98, max(0.0, rng.gauss(cy, 0.03)))
        w, h = rng.random() * 0.02, rng.random() * 0.02
        out.append(Rect(x, x + w, y, y + h, id_base + i))
    return out


def _skewed(rng: random.Random, n: int, id_base: int = 0):
    """Mass piled against x=0 — the cut balancer's stress case."""
    out = []
    for i in range(n):
        x = rng.random() ** 3
        y = rng.random()
        w, h = rng.random() * 0.03, rng.random() * 0.03
        out.append(Rect(x, min(1.0, x + w), y, min(1.0, y + h),
                        id_base + i))
    return out


def _degenerate(rng: random.Random, n: int, id_base: int = 0):
    """Duplicates, zero-area points, and strip-straddling slivers."""
    out = []
    for i in range(n):
        rid = id_base + i
        if out and i % 4 == 0:
            # Exact duplicate coordinates under a fresh id.
            prev = out[-1]
            out.append(Rect(prev.xlo, prev.xhi, prev.ylo, prev.yhi, rid))
        elif i % 5 == 0:
            x, y = rng.random(), rng.random()
            out.append(Rect(x, x, y, y, rid))  # zero-area point
        elif i % 7 == 0:
            # Full-width sliver: straddles every shard boundary.
            y = rng.random() * 0.99
            out.append(Rect(0.0, 1.0, y, y + 0.004, rid))
        else:
            x, y = rng.random(), rng.random()
            w, h = rng.random() * 0.03, rng.random() * 0.03
            out.append(Rect(x, min(1.0, x + w), y, min(1.0, y + h),
                            rid))
    return out


GENERATORS = {
    "uniform": _uniform,
    "clustered": _clustered,
    "skewed": _skewed,
    "degenerate": _degenerate,
}


# -- differential-testing harness --------------------------------------------


def brute_reference(
    rects_a: Sequence[Rect],
    rects_b: Optional[Sequence[Rect]] = None,
    window: Optional[Rect] = None,
) -> Set[Tuple[int, int]]:
    """The oracle pair set with the engine's exact semantics.

    ``rects_b=None`` is a self-join (one representative per unordered
    pair, ``rid_a < rid_b``, identity excluded); a ``window`` keeps a
    pair only when the rectangles' common intersection meets it — the
    same post-filter rule :func:`repro.engine.executor._filter_window`
    applies.
    """
    if rects_b is None:
        pairs = {
            (x, y)
            for x, y in brute_force_pairs(rects_a, rects_a)
            if x < y
        }
        by_a = by_b = {r.rid: r for r in rects_a}
    else:
        pairs = brute_force_pairs(rects_a, rects_b)
        by_a = {r.rid: r for r in rects_a}
        by_b = {r.rid: r for r in rects_b}
    if window is not None:
        kept = set()
        for ida, idb in pairs:
            inter = intersection(by_a[ida], by_b[idb])
            if inter is not None and inter.intersects(window):
                kept.add((ida, idb))
        pairs = kept
    return pairs


@pytest.fixture
def assert_same_pairs():
    """Differential check: brute force == single engine == sharded.

    The returned callable runs one join (optionally windowed, or a
    self-join when ``rects_b`` is omitted) through the brute-force
    oracle, a single :class:`SpatialQueryEngine`, and
    :class:`ShardedEngine` at every requested shard count and pool
    kind — all shards of one engine sharing one worker pool — and
    asserts bit-identical sorted pair sets throughout, plus the
    shared-pool accounting invariant (per-shard client counters sum to
    the pool's totals).  ``replicas``/``faults`` replicate each shard
    and inject a seeded :class:`~repro.engine.faults.FaultPlan` into
    the sharded runs (fault rules re-arm per engine via
    ``plan_factory``), which is how the chaos differentials assert
    that replica failures never change pairs.  Returns the sorted
    reference pairs.
    """
    from repro.engine import Query, ShardedEngine, SpatialQueryEngine

    def check(
        rects_a: Sequence[Rect],
        rects_b: Optional[Sequence[Rect]] = None,
        *,
        window: Optional[Rect] = None,
        universe: Optional[Rect] = None,
        shard_counts: Sequence[int] = (1, 2, 4),
        pool_kinds: Sequence[str] = ("serial", "thread"),
        workers: int = 2,
        force: Optional[str] = None,
        replicas: int = 1,
        plan_factory=None,
        expect_failovers: bool = False,
    ) -> List[Tuple[int, int]]:
        self_join = rects_b is None
        if universe is None:
            universe = mbr_of(list(rects_a) + list(rects_b or ()))
        ref = sorted(brute_reference(rects_a, rects_b, window))
        query = Query(
            relations=("a", "a") if self_join else ("a", "b"),
            window=window, force=force,
        )

        single = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=workers,
            cache_capacity=0, min_ship_rects=0,
        )
        single.register("a", rects_a, universe=universe)
        if not self_join:
            single.register("b", rects_b, universe=universe)
        got = sorted(single.execute(query).result.pairs)
        assert got == ref, (
            f"single engine diverged from brute force "
            f"({len(got)} vs {len(ref)} pairs)"
        )
        single.close()

        for kind in pool_kinds:
            for n_shards in shard_counts:
                faults = plan_factory() if plan_factory else None
                sharded = ShardedEngine(
                    shards=n_shards, scale=TEST_SCALE, machine=MACHINE_3,
                    workers=workers, pool_kind=kind, cache_capacity=0,
                    min_ship_rects=0, replicas=replicas, faults=faults,
                    retry_backoff_seconds=0.0,
                )
                sharded.register("a", rects_a, universe=universe)
                if not self_join:
                    sharded.register("b", rects_b, universe=universe)
                got = sorted(sharded.execute(query).result.pairs)
                assert got == ref, (
                    f"{n_shards}-shard {kind}-pool engine diverged "
                    f"({len(got)} vs {len(ref)} pairs)"
                )
                # Shared-pool accounting: every engine (all replicas)
                # submits through its own client, and the clients'
                # counters must sum to the pool's totals —
                # cross-shard traffic is never double- or
                # under-counted.
                for counter in ("tasks_dispatched", "tasks_inline",
                                "tiles_dispatched", "tiles_inline"):
                    per_shard = sum(
                        getattr(e.worker_pool, counter)
                        for e in sharded.all_engines
                    )
                    assert per_shard == getattr(sharded.pool, counter), (
                        f"{counter}: shard sum {per_shard} != pool "
                        f"total {getattr(sharded.pool, counter)}"
                    )
                snap = sharded.metrics_snapshot()
                assert snap["queries_served"] == 1
                assert snap["pairs_returned"] == len(ref)
                if expect_failovers and faults is not None:
                    fired = faults.total_injected
                    assert snap["failovers"] >= (1 if fired else 0), (
                        f"{n_shards}-shard {kind}-pool: "
                        f"{fired} faults fired but no failover counted"
                    )
                    assert snap["retries"] >= snap["failovers"]
                sharded.close()
                assert sharded.pool.refs == 0
        return ref

    return check
