"""Shared fixtures: a small simulated machine room and tiny datasets."""

from __future__ import annotations

import pytest

from repro.geom.rect import Rect
from repro.sim.env import SimEnv
from repro.sim.machines import ALL_MACHINES
from repro.sim.scale import ScaleConfig
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

#: A small-memory scale so tests exercise external behaviour (run
#: formation, pool eviction, partitioning) on tiny inputs.
TEST_SCALE = ScaleConfig(
    scale=1024,
    index_page_bytes=256,
    stream_block_bytes=512,
    memory_bytes=4096,          # 204 rectangles
    buffer_pool_bytes=4096,     # 16 pages
    name="test",
)


@pytest.fixture
def env() -> SimEnv:
    return SimEnv(scale=TEST_SCALE, machines=ALL_MACHINES)


@pytest.fixture
def disk(env) -> Disk:
    return Disk(env)


@pytest.fixture
def store(disk) -> PageStore:
    return PageStore(disk, TEST_SCALE.index_page_bytes)


@pytest.fixture
def unit_square() -> Rect:
    return Rect(0.0, 1.0, 0.0, 1.0, 0)


def make_env(scale: ScaleConfig = TEST_SCALE) -> SimEnv:
    """Non-fixture variant for hypothesis tests (fresh per example)."""
    return SimEnv(scale=scale, machines=ALL_MACHINES)
