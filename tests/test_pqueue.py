"""External (spilling) priority queue: heap semantics under overflow."""

import heapq
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.disk import Disk
from repro.storage.pqueue import ExternalHeap

from tests.conftest import make_env


def fresh_heap(memory_items=8):
    env = make_env()
    return ExternalHeap(Disk(env), memory_items=memory_items)


class TestBasics:
    def test_push_pop_ordering(self):
        h = fresh_heap()
        for k in [5, 1, 4, 2, 3]:
            h.push(k, f"v{k}")
        assert [h.pop()[0] for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_len_and_bool(self):
        h = fresh_heap()
        assert not h and len(h) == 0
        h.push(1, None)
        assert h and len(h) == 1
        h.pop()
        assert not h

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            fresh_heap().pop()

    def test_peek_matches_pop(self):
        h = fresh_heap()
        for k in [9, 3, 7]:
            h.push(k, None)
        assert h.peek_key() == 3
        assert h.pop()[0] == 3

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            fresh_heap().peek_key()

    def test_values_travel_with_keys(self):
        h = fresh_heap()
        h.push(2, "two")
        h.push(1, "one")
        assert h.pop() == (1, "one")
        assert h.pop() == (2, "two")

    def test_min_memory_rejected(self):
        env = make_env()
        with pytest.raises(ValueError):
            ExternalHeap(Disk(env), memory_items=3)


class TestSpilling:
    def test_overflow_spills_to_disk(self):
        h = fresh_heap(memory_items=8)
        for k in range(50):
            h.push(50 - k, None)
        assert h.spills > 0
        assert h.run_count > 0
        assert len(h) == 50

    def test_order_preserved_across_spills(self):
        h = fresh_heap(memory_items=8)
        keys = list(range(200))
        random.Random(1).shuffle(keys)
        for k in keys:
            h.push(k, None)
        assert [h.pop()[0] for _ in range(200)] == sorted(range(200))

    def test_interleaved_push_pop_with_spills(self):
        h = fresh_heap(memory_items=8)
        rng = random.Random(2)
        model = []
        for _ in range(500):
            if model and rng.random() < 0.45:
                heapq.heapify(model)
                assert h.pop()[0] == heapq.heappop(model)
            else:
                k = rng.randint(0, 1000)
                h.push(k, None)
                model.append(k)
        assert len(h) == len(model)

    def test_spill_charges_io(self):
        env = make_env()
        h = ExternalHeap(Disk(env), memory_items=8)
        for k in range(100):
            h.push(k, None)
        assert env.page_writes >= h.spills

    def test_in_memory_mode_never_spills(self):
        h = fresh_heap(memory_items=1 << 20)
        for k in range(1000):
            h.push(k, None)
        assert h.spills == 0

    def test_max_memory_items_tracked(self):
        h = fresh_heap(memory_items=8)
        for k in range(20):
            h.push(k, None)
        assert 0 < h.max_memory_items <= 9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
           st.integers(4, 32))
    def test_property_heapsort_equivalence(self, keys, mem):
        env = make_env()
        h = ExternalHeap(Disk(env), memory_items=mem)
        for k in keys:
            h.push(k, None)
        out = [h.pop()[0] for _ in range(len(keys))]
        assert out == sorted(keys)
        assert not h
