"""Sharded scatter/gather serving: differential and property tests.

The headline contract: :class:`ShardedEngine` must return bit-identical
pair sets to the single-engine and brute-force references on every
workload — random, skewed, clustered, degenerate, windowed, self-join,
forced-strategy, multiway — at every shard count, with all shards
sharing one :class:`WorkerPool`.  The ``assert_same_pairs`` fixture in
``conftest.py`` is the harness; the property tests here feed it seeded
adversarial data.  Alongside correctness, the suite pins the
shared-pool lifecycle (ref-counted close, per-client accounting,
broken-pool demotion) and cross-engine isolation (budgets, artifact
caches, interleaved and concurrent workloads).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.engine import (
    AdmissionError,
    Query,
    ShardedEngine,
    SpatialQueryEngine,
    WorkerPool,
    make_workload,
    run_workload,
)
from repro.engine.shard import balanced_cuts
from repro.geom.rect import Rect, intersection
from repro.sim.machines import MACHINE_3

from tests.conftest import (
    GENERATORS,
    TEST_SCALE,
    _clustered,
    _degenerate,
    _skewed,
    _uniform,
    brute_reference,
)

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def _make_sharded(shards: int, **kw) -> ShardedEngine:
    kw.setdefault("scale", TEST_SCALE)
    kw.setdefault("machine", MACHINE_3)
    kw.setdefault("workers", 2)
    kw.setdefault("pool_kind", "serial")
    kw.setdefault("cache_capacity", 0)
    kw.setdefault("min_ship_rects", 0)
    return ShardedEngine(shards=shards, **kw)


def _make_single(pool=None, **kw) -> SpatialQueryEngine:
    kw.setdefault("scale", TEST_SCALE)
    kw.setdefault("machine", MACHINE_3)
    kw.setdefault("workers", 2)
    kw.setdefault("cache_capacity", 0)
    kw.setdefault("min_ship_rects", 0)
    return SpatialQueryEngine(worker_pool=pool, **kw)


# -- sharding geometry -------------------------------------------------------


class TestShardingGeometry:
    def test_balanced_cuts_split_uniform_mass_evenly(self):
        rng = random.Random(1)
        rects = _uniform(rng, 400)
        cuts = balanced_cuts(rects, UNIT, 4, grid=32)
        assert len(cuts) == 3
        assert cuts == sorted(cuts)
        # Uniform mass: cuts land near the quartiles.
        for cut, expect in zip(cuts, (0.25, 0.5, 0.75)):
            assert abs(cut - expect) < 0.1

    def test_degenerate_mass_collapses_cuts(self):
        # All centers in one column: every cut lands at the same spot
        # and the excess shards simply stay empty.
        rects = [Rect(0.1, 0.12, y / 100, y / 100 + 0.01, y)
                 for y in range(50)]
        cuts = balanced_cuts(rects, UNIT, 4, grid=32)
        assert len(set(cuts)) == 1

    def test_outer_strips_are_unbounded(self):
        sharded = _make_sharded(3)
        sharded.register("a", _uniform(random.Random(2), 100),
                         universe=UNIT)
        lo0, _ = sharded.strip_of(0)
        _, hi2 = sharded.strip_of(2)
        assert lo0 == float("-inf") and hi2 == float("inf")
        # A later relation lying entirely outside the first one's
        # universe still lands in a shard.
        far = [Rect(5.0 + i * 0.01, 5.02 + i * 0.01, 0.1, 0.2, 900 + i)
               for i in range(10)]
        sharded.register("far", far)
        assert sharded._present["far"][2]
        sharded.close()

    def test_strip_of_before_register_raises_clearly(self):
        sharded = _make_sharded(2)
        with pytest.raises(RuntimeError, match="no relation is registered"):
            sharded.strip_of(1)
        sharded.close()

    def test_window_prunes_nonoverlapping_shards(self):
        rng = random.Random(3)
        sharded = _make_sharded(4)
        sharded.register("a", _uniform(rng, 200), universe=UNIT)
        sharded.register("b", _uniform(rng, 150, 10_000), universe=UNIT)
        corner = Rect(0.9, 0.99, 0.9, 0.99, 0)
        out = sharded.execute(Query(relations=("a", "b"), window=corner))
        detail = out.result.detail
        assert detail["shards_pruned"], "a corner window must prune shards"
        assert len(detail["shards_queried"]) < 4
        sharded.close()


# -- differential suite ------------------------------------------------------


class TestDifferential:
    """Brute force == single engine == ShardedEngine(1, 2, 4 shards)."""

    def test_full_join(self, assert_same_pairs):
        rng = random.Random(7)
        ref = assert_same_pairs(_uniform(rng, 250),
                                _uniform(rng, 120, 10_000))
        assert ref, "the differential reference must not be empty"

    def test_windowed_join(self, assert_same_pairs):
        rng = random.Random(8)
        assert_same_pairs(
            _uniform(rng, 250), _uniform(rng, 120, 10_000),
            window=Rect(0.2, 0.55, 0.15, 0.6, 0),
        )

    def test_self_join(self, assert_same_pairs):
        rng = random.Random(9)
        ref = assert_same_pairs(_clustered(rng, 200))
        assert all(x < y for x, y in ref)

    def test_forced_strategies(self, assert_same_pairs):
        rng = random.Random(10)
        a = _uniform(rng, 200)
        b = _uniform(rng, 100, 10_000)
        for force in ("sssj", "pq-index", "pbsm-grid"):
            assert_same_pairs(a, b, force=force, shard_counts=(2, 3),
                              pool_kinds=("serial",))

    def test_multiway_join(self):
        rng = random.Random(11)
        a = _uniform(rng, 90)
        b = _uniform(rng, 70, 10_000)
        c = _uniform(rng, 60, 20_000)
        ref = set()
        for ra in a:
            for rb in b:
                i1 = intersection(ra, rb)
                if i1 is None:
                    continue
                for rc in c:
                    if intersection(i1, rc) is not None:
                        ref.add((ra.rid, rb.rid, rc.rid))
        query = Query(relations=("a", "b", "c"))
        single = _make_single()
        for name, rects in (("a", a), ("b", b), ("c", c)):
            single.register(name, rects, universe=UNIT)
        assert set(map(tuple, single.execute(query).result.pairs)) == ref
        single.close()
        for shards in (2, 4):
            sharded = _make_sharded(shards)
            for name, rects in (("a", a), ("b", b), ("c", c)):
                sharded.register(name, rects, universe=UNIT)
            got = set(map(tuple, sharded.execute(query).result.pairs))
            assert got == ref, f"{shards}-shard multiway diverged"
            sharded.close()

    def test_count_only_query_dedups_across_shards(self):
        rng = random.Random(12)
        a = _degenerate(rng, 150)
        b = _degenerate(rng, 120, 10_000)
        ref = brute_reference(a, b)
        for shards in (2, 4):
            sharded = _make_sharded(shards)
            sharded.register("a", a, universe=UNIT)
            sharded.register("b", b, universe=UNIT)
            out = sharded.execute(
                Query(relations=("a", "b"), collect_pairs=False)
            )
            assert out.result.pairs is None
            assert out.result.n_pairs == len(ref), (
                "count-only results must be boundary-deduplicated"
            )
            sharded.close()

    def test_refined_join_matches_single_engine(self):
        rng = random.Random(13)
        a = _uniform(rng, 120)
        b = _uniform(rng, 90, 10_000)
        # Exact diagonals for half the rectangles; the rest fall back
        # to the MBR verdict — both behaviours must shard identically.
        geom_a = {r.rid: [(r.xlo, r.ylo), (r.xhi, r.yhi)]
                  for r in a if r.rid % 2 == 0}
        geom_b = {r.rid: [(r.xlo, r.yhi), (r.xhi, r.ylo)]
                  for r in b if r.rid % 2 == 0}
        query = Query(relations=("a", "b"), refine=True)
        single = _make_single()
        single.register("a", a, universe=UNIT, geometries=geom_a)
        single.register("b", b, universe=UNIT, geometries=geom_b)
        ref = sorted(single.execute(query).result.pairs)
        single.close()
        for shards in (2, 4):
            sharded = _make_sharded(shards)
            sharded.register("a", a, universe=UNIT, geometries=geom_a)
            sharded.register("b", b, universe=UNIT, geometries=geom_b)
            assert sorted(sharded.execute(query).result.pairs) == ref
            sharded.close()


# -- randomized property tests (the test-archetype headline) -----------------


class TestShardCountInvariance:
    """Seeded property tests: results never depend on the shard count."""

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", [3, 11])
    def test_join_invariance(self, kind, seed, assert_same_pairs):
        rng = random.Random(seed)
        gen = GENERATORS[kind]
        assert_same_pairs(gen(rng, 130), gen(rng, 100, 10_000),
                          pool_kinds=("serial",))

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", [5, 17])
    def test_window_invariance(self, kind, seed, assert_same_pairs):
        rng = random.Random(seed)
        gen = GENERATORS[kind]
        a = gen(rng, 130)
        b = gen(rng, 100, 10_000)
        # A random window, sometimes degenerate-thin.
        x = rng.random() * 0.7
        y = rng.random() * 0.7
        w = rng.random() * 0.4 + (0.0 if seed % 2 else 0.001)
        h = rng.random() * 0.4
        assert_same_pairs(a, b, window=Rect(x, x + w, y, y + h, 0),
                          pool_kinds=("serial",))

    @pytest.mark.parametrize("kind", ["skewed", "degenerate"])
    def test_self_join_invariance(self, kind, assert_same_pairs):
        rng = random.Random(23)
        assert_same_pairs(GENERATORS[kind](rng, 160),
                          pool_kinds=("serial",))

    def test_invariance_across_pool_kinds(self, assert_same_pairs):
        # One cross-product sweep with real thread pools: shard count
        # x pool kind must not change a single pair.
        rng = random.Random(29)
        assert_same_pairs(_skewed(rng, 140), _skewed(rng, 110, 10_000),
                          pool_kinds=("serial", "thread"))


# -- shared pool lifecycle ---------------------------------------------------


class TestSharedPoolLifecycle:
    def _registered(self, pool, seed, name="a", **kw):
        rng = random.Random(seed)
        rects = _uniform(rng, 200, seed * 1000)
        engine = _make_single(pool=pool, pool_kind="thread", **kw)
        engine.register(name, rects, universe=UNIT)
        return engine, rects

    def test_close_releases_ref_without_stopping_shared_pool(self):
        pool = WorkerPool(2, kind="thread")
        e1, r1 = self._registered(pool, 1)
        e2, r2 = self._registered(pool, 2)
        assert pool.refs == 2
        q = Query(relations=("a", "a"))
        e1.execute(q)
        e2.execute(q)
        assert pool.started
        e1.close()
        assert pool.refs == 1
        assert pool.started, "a sibling's pool must survive one close"
        # The surviving engine keeps serving correct answers.
        out = e2.execute(Query(relations=("a", "a"),
                               window=Rect(0.1, 0.9, 0.1, 0.9, 0)))
        ref = brute_reference(r2, window=Rect(0.1, 0.9, 0.1, 0.9, 0))
        assert set(out.result.pairs) == ref
        e2.close()
        assert pool.refs == 0
        assert not pool.started, "the last release stops the pool"

    def test_client_counters_sum_to_pool_totals(self):
        pool = WorkerPool(2, kind="thread")
        # Cost-aware dispatch off: the point here is per-client counter
        # attribution, which needs e2's third (windowed) query to ship
        # rather than inline off the full plan's measured cost.
        e1, _ = self._registered(pool, 3, inline_plan_ops=0)
        e2, _ = self._registered(pool, 4, inline_plan_ops=0)
        q = Query(relations=("a", "a"))
        e1.execute(q)
        e2.execute(q)
        e2.execute(Query(relations=("a", "a"),
                         window=Rect(0.0, 0.5, 0.0, 0.5, 0)))
        for counter in ("tasks_dispatched", "tasks_inline",
                        "tiles_dispatched", "tiles_inline"):
            total = getattr(pool, counter)
            clients = (getattr(e1.worker_pool, counter)
                       + getattr(e2.worker_pool, counter))
            assert clients == total, counter
        assert e2.worker_pool.tasks_dispatched > (
            e1.worker_pool.tasks_dispatched
        ), "per-client counters must attribute traffic, not mirror it"
        e1.close()
        e2.close()

    def test_broken_pool_demotion_is_shared_but_loses_no_query(self):
        pool = WorkerPool(2, kind="process")
        e1, r1 = self._registered(pool, 5)
        e2, r2 = self._registered(pool, 6)
        # Simulate a broken process pool observed by e1's executor.
        recovered = e1.worker_pool.recover(len, (1, 2, 3))
        assert recovered == 3, "the lost task is recomputed inline"
        assert pool.kind == "thread", "demotion is pool-wide"
        assert pool.fallbacks == 1
        # Both engines keep serving bit-correct results on threads.
        q = Query(relations=("a", "a"))
        assert set(e1.execute(q).result.pairs) == brute_reference(r1)
        assert set(e2.execute(q).result.pairs) == brute_reference(r2)
        e1.close()
        e2.close()

    def test_close_query_close_stops_recreated_executor(self):
        # A drained engine that serves again re-takes its pool ref, so
        # the lazily recreated executor is stopped by the next close
        # instead of leaking worker threads/processes.  Cost-aware
        # dispatch off: the repeat must ship to restart the pool.
        engine = _make_single(pool_kind="thread", inline_plan_ops=0)
        engine.register("a", _uniform(random.Random(71), 200),
                        universe=UNIT)
        q = Query(relations=("a", "a"))
        engine.execute(q)
        assert engine.worker_pool.started
        engine.close()
        assert not engine.worker_pool.started
        engine.execute(q)  # recreates the executor lazily
        assert engine.worker_pool.started
        engine.close()
        assert not engine.worker_pool.started

    def test_submit_after_rug_pulled_executor_runs_inline(self):
        # A sibling's recover()/release() can stop the executor between
        # another coordinator's fetch and submit; the task must run
        # inline, counted as inline, instead of crashing the query.
        pool = WorkerPool(2, kind="thread")
        fut = pool.submit(len, (1, 2))
        assert fut.result() == 2 and pool.tasks_dispatched == 1
        pool._executor.shutdown(wait=True)  # rug-pull, pool unaware
        fut = pool.submit(len, (1, 2, 3))
        assert fut.result() == 3
        assert pool.tasks_dispatched == 1 and pool.tasks_inline == 1
        pool.shutdown()

    def test_broken_executor_at_submit_triggers_demotion(self):
        # BrokenExecutor is a RuntimeError subclass; a pool whose
        # workers died must hit the recover path (demote to threads,
        # count the fallback), not the quiet rug-pull fallback.
        from concurrent.futures import BrokenExecutor

        class _BrokenStub:
            def submit(self, fn, payload):
                raise BrokenExecutor("workers died")

            def shutdown(self, wait=True):
                pass

        pool = WorkerPool(2, kind="process")
        pool._executor = _BrokenStub()
        fut = pool.submit(len, (1, 2, 3))
        assert fut.result() == 3, "the lost task is recomputed inline"
        assert pool.kind == "thread", "dead workers must demote the pool"
        assert pool.fallbacks == 1
        assert pool.tasks_inline == 1 and pool.tasks_dispatched == 0
        # The demoted pool keeps dispatching — on threads now.
        fut = pool.submit(len, (1, 2))
        assert fut.result() == 2 and pool.tasks_dispatched == 1
        pool.shutdown()

    def test_rug_pulled_executor_recovers_through_shipping_path(self):
        # End to end through _TaskShipper: the fallback future must
        # accept the shipper's recovery tags (fn/payload), so a query
        # whose executor vanished mid-flight still returns exact pairs.
        rng = random.Random(73)
        rects = _uniform(rng, 220)
        engine = _make_single(pool_kind="thread")
        engine.register("a", rects, universe=UNIT)
        q = Query(relations=("a", "a"))
        engine.execute(q)  # creates the executor
        pool = engine.worker_pool.pool
        assert pool.started
        pool._executor.shutdown(wait=True)  # rug-pull, pool unaware
        out = engine.execute(q)
        assert set(out.result.pairs) == brute_reference(rects)
        engine.close()

    def test_sharded_close_is_idempotent(self):
        sharded = _make_sharded(3, pool_kind="thread")
        sharded.register("a", _uniform(random.Random(7), 150),
                         universe=UNIT)
        sharded.execute(Query(relations=("a", "a")))
        sharded.close()
        sharded.close()  # second close must be a no-op
        assert sharded.pool.refs == 0


# -- cross-engine isolation on one pool --------------------------------------


class TestSharedPoolIsolation:
    def _pair(self, pool_kind="thread"):
        pool = WorkerPool(2, kind=pool_kind)
        rng = random.Random(31)
        r1 = _clustered(rng, 180)
        r2 = _skewed(rng, 180, 50_000)
        # Roomy budgets: tiles stay resident, so partition artifacts
        # are retained and the invalidation-isolation check has
        # something to (not) invalidate.
        e1 = _make_single(pool=pool, memory_bytes=512_000)
        e2 = _make_single(pool=pool, memory_bytes=512_000)
        e1.register("a", r1, universe=UNIT)
        e2.register("a", r2, universe=UNIT)
        return pool, e1, e2, r1, r2

    def test_interleaved_workloads_no_crosstalk(self):
        pool, e1, e2, r1, r2 = self._pair()
        ref1 = brute_reference(r1)
        ref2 = brute_reference(r2)
        q = Query(relations=("a", "a"))
        for _ in range(3):
            assert set(e1.execute(q).result.pairs) == ref1
            assert set(e2.execute(q).result.pairs) == ref2
        # Budgets are private slices: separate ledgers, both exercised.
        assert e1.budget is not e2.budget
        assert e1.budget.high_water_bytes > 0
        assert e2.budget.high_water_bytes > 0
        # Artifact caches are private: invalidating one engine's
        # relation never touches the sibling's warm artifacts.
        assert e1.artifacts is not e2.artifacts
        e2_entries = len(e2.artifacts)
        e1.register("a", r1, universe=UNIT)  # version bump on e1 only
        assert e1.artifacts.invalidations > 0
        assert e2.artifacts.invalidations == 0
        assert len(e2.artifacts) == e2_entries
        assert set(e2.execute(q).result.pairs) == ref2
        e1.close()
        e2.close()

    def test_concurrent_submission_is_correct(self):
        pool, e1, e2, r1, r2 = self._pair()
        ref1 = brute_reference(r1)
        ref2 = brute_reference(r2)
        q = Query(relations=("a", "a"))
        failures = []

        def worker(engine, ref):
            try:
                for _ in range(4):
                    if set(engine.execute(q).result.pairs) != ref:
                        failures.append("pair mismatch")
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(e1, ref1)),
                   threading.Thread(target=worker, args=(e2, ref2))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
        # Shared totals survived concurrent submission intact.
        assert (e1.worker_pool.tasks_dispatched
                + e2.worker_pool.tasks_dispatched
                == pool.tasks_dispatched)
        assert (e1.worker_pool.tasks_inline
                + e2.worker_pool.tasks_inline == pool.tasks_inline)
        e1.close()
        e2.close()

    def test_shard_fallback_does_not_poison_sibling_results(self):
        sharded = _make_sharded(2, pool_kind="process")
        rng = random.Random(37)
        rects = _uniform(rng, 220)
        sharded.register("a", rects, universe=UNIT)
        # Shard 0's executor observes a broken pool mid-query; the
        # demotion is shared, but shard 1's results must stay exact.
        sharded.engines[0].worker_pool.recover(len, ())
        assert sharded.pool.kind == "thread"
        out = sharded.execute(Query(relations=("a", "a")))
        assert set(out.result.pairs) == brute_reference(rects)
        sharded.close()


# -- sharded serving behaviour -----------------------------------------------


class TestShardedServing:
    def test_top_level_cache_skips_scatter(self):
        sharded = _make_sharded(3, cache_capacity=8)
        rng = random.Random(41)
        sharded.register("a", _uniform(rng, 150), universe=UNIT)
        sharded.register("b", _uniform(rng, 100, 10_000), universe=UNIT)
        q = Query(relations=("a", "b"))
        first = sharded.execute(q)
        executed = sum(e.metrics.queries_executed
                       for e in sharded.engines)
        second = sharded.execute(q)
        assert not first.from_cache and second.from_cache
        assert second.result.pair_set() == first.result.pair_set()
        assert sum(e.metrics.queries_executed
                   for e in sharded.engines) == executed, (
            "a top-level hit must not touch any shard"
        )
        # The cached copy is private: mutating it cannot poison later
        # hits.
        second.result.pairs.clear()
        assert sharded.execute(q).result.pair_set() == (
            first.result.pair_set()
        )
        sharded.close()

    def test_count_only_repeat_served_from_cache(self):
        sharded = _make_sharded(2, cache_capacity=8)
        rng = random.Random(79)
        sharded.register("a", _uniform(rng, 150), universe=UNIT)
        q = Query(relations=("a", "a"), collect_pairs=False)
        first = sharded.execute(q)
        second = sharded.execute(q)
        assert not first.from_cache and second.from_cache
        assert second.result.n_pairs == first.result.n_pairs
        assert second.result.pairs is None
        sharded.close()

    def test_reregister_invalidates_only_that_relation(self):
        sharded = _make_sharded(2, cache_capacity=8)
        rng = random.Random(43)
        a1 = _uniform(rng, 150)
        b = _uniform(rng, 100, 10_000)
        sharded.register("a", a1, universe=UNIT)
        sharded.register("b", b, universe=UNIT)
        q = Query(relations=("a", "b"))
        sharded.execute(q)
        a2 = _uniform(random.Random(99), 150)
        sharded.register("a", a2, universe=UNIT)
        out = sharded.execute(q)
        assert not out.from_cache, "re-registration must orphan the hit"
        assert set(out.result.pairs) == brute_reference(a2, b)
        sharded.close()

    def test_admission_error_propagates_from_shard_slice(self):
        # The total would fit one engine, but each slice is below the
        # minimum grant — the shard's admission control must refuse.
        sharded = _make_sharded(4, memory_bytes=4096)
        rng = random.Random(47)
        sharded.register("a", _uniform(rng, 200), universe=UNIT)
        with pytest.raises(AdmissionError):
            sharded.execute(Query(relations=("a", "a")))
        sharded.close()

    def test_run_workload_on_sharded_engine(self):
        rng = random.Random(53)
        roads = _uniform(rng, 220)
        hydro = _uniform(rng, 160, 10_000)
        queries = make_workload(UNIT, 14, seed=5)

        single = _make_single(cache_capacity=16)
        single.register("roads", roads, universe=UNIT)
        single.register("hydro", hydro, universe=UNIT)
        ref = run_workload(single, queries)
        single.close()

        sharded = _make_sharded(3, cache_capacity=16)
        sharded.register("roads", roads, universe=UNIT)
        sharded.register("hydro", hydro, universe=UNIT)
        report = run_workload(sharded, queries)
        sharded.close()

        assert report["queries"] == ref["queries"] == 14
        assert report["pairs_returned"] == ref["pairs_returned"], (
            "the serving harness must see identical answers sharded"
        )
        assert report["sim_wall_seconds"] > 0
        m = report["metrics"]
        assert m["shards"] == 3
        assert m["queries_served"] == 14
        assert m["cache_hits"] > 0, "repeats must hit the top cache"
        assert m["budget_total_bytes"] == sum(
            e.budget.total_bytes for e in sharded.engines
        )

    def test_metrics_snapshot_aggregates_consistently(self):
        sharded = _make_sharded(4, pool_kind="thread")
        rng = random.Random(59)
        sharded.register("a", _uniform(rng, 250), universe=UNIT)
        sharded.register("b", _uniform(rng, 180, 10_000), universe=UNIT)
        for q in (Query(relations=("a", "b")),
                  Query(relations=("a", "a")),
                  Query(relations=("a", "b"),
                        window=Rect(0.0, 0.4, 0.0, 0.4, 0))):
            sharded.execute(q)
        snap = sharded.metrics_snapshot()
        assert snap["queries_served"] == 3
        # Physical counters are shard sums.
        assert snap["pages_read"] == sum(
            e.metrics.pages_read for e in sharded.engines
        )
        # The deployment's sim clock is the scatter critical path
        # (LPT makespan per query), bounded by the per-shard sum —
        # shards overlap on the shared pool, they do not queue behind
        # each other.  The raw sum survives under its own key.
        shard_sum = sum(
            e.metrics.sim_wall_seconds for e in sharded.engines
        )
        assert snap["sim_wall_shard_sum_seconds"] == pytest.approx(
            shard_sum
        )
        assert 0.0 < snap["sim_wall_seconds"] <= shard_sum + 1e-12
        assert snap["sim_wall_seconds"] == pytest.approx(
            sharded.sim_wall_total
        )
        assert snap["scatter_lanes"] >= 2
        # Dispatch attribution closes: per-shard rows sum to the pool.
        per_shard = snap["per_shard"]
        assert len(per_shard) == 4
        for counter in ("tasks_dispatched", "tiles_dispatched",
                        "tasks_inline", "tiles_inline"):
            assert sum(row[counter] for row in per_shard) == (
                snap["worker_pool"][counter]
            ), counter
        assert snap["worker_pool"]["refs"] == 4
        sharded.close()

    def test_explain_shows_scatter_plan(self):
        sharded = _make_sharded(2)
        rng = random.Random(61)
        sharded.register("a", _uniform(rng, 120), universe=UNIT)
        sharded.register("b", _uniform(rng, 90, 10_000), universe=UNIT)
        text = sharded.explain(Query(relations=("a", "b")))
        assert "Sharded : 2 shards" in text
        assert text.count("Chosen") == 2
        sharded.close()

    def test_drop_and_unknown_relation(self):
        sharded = _make_sharded(2)
        rng = random.Random(67)
        sharded.register("a", _uniform(rng, 100), universe=UNIT)
        sharded.drop("a")
        with pytest.raises(KeyError, match="unknown relation"):
            sharded.execute(Query(relations=("a", "a")))
        with pytest.raises(KeyError, match="unknown relation"):
            sharded.drop("a")
