"""TIGER-like data: determinism, statistical properties, Table 2 shape."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_ORDER,
    DATASET_SPECS,
    build_dataset,
    clear_cache,
)
from repro.data.generator import (
    clustered_rects,
    grid_rects,
    stabbing_rects,
    uniform_rects,
)
from repro.data.tiger import make_hydro, make_landuse, make_roads
from repro.geom.rect import Rect, contains
from repro.sim.scale import QUICK_SCALE, ScaleConfig

NJ = DATASET_SPECS["NJ"].region


def sweep_cut_sizes(rects, n_lines=50):
    """Number of rectangles cut by each of ``n_lines`` horizontal lines."""
    ys = np.linspace(
        min(r.ylo for r in rects), max(r.yhi for r in rects), n_lines
    )
    return [sum(1 for r in rects if r.ylo <= y <= r.yhi) for y in ys]


class TestGenerators:
    def test_roads_inside_region(self):
        roads = make_roads(500, NJ, seed=1)
        assert len(roads) == 500
        assert all(contains(NJ, r) for r in roads)

    def test_hydro_inside_region(self):
        hydro = make_hydro(120, NJ, seed=2)
        assert len(hydro) == 120
        assert all(contains(NJ, r) for r in hydro)

    def test_landuse_inside_region(self):
        lu = make_landuse(60, NJ, seed=3)
        assert len(lu) == 60
        assert all(contains(NJ, r) for r in lu)

    def test_deterministic_by_seed(self):
        assert make_roads(200, NJ, seed=7) == make_roads(200, NJ, seed=7)
        assert make_roads(200, NJ, seed=7) != make_roads(200, NJ, seed=8)

    def test_ids_sequential_from_base(self):
        roads = make_roads(50, NJ, seed=4, id_base=1000)
        assert [r.rid for r in roads] == list(range(1000, 1050))

    def test_coordinates_float32_exact(self):
        # The invariant the 20-byte record format relies on.
        for r in make_roads(300, NJ, seed=5) + make_hydro(100, NJ, seed=6):
            for c in (r.xlo, r.xhi, r.ylo, r.yhi):
                assert float(np.float32(c)) == c

    def test_all_rects_valid(self):
        for r in make_roads(300, NJ, seed=9) + make_hydro(100, NJ, seed=10):
            assert r.is_valid()

    def test_roads_are_small(self):
        roads = make_roads(1000, NJ, seed=11)
        region_area = (NJ.xhi - NJ.xlo) * (NJ.yhi - NJ.ylo)
        avg_area = np.mean([(r.width) * (r.height) for r in roads])
        assert avg_area < region_area / 10_000

    def test_zero_count(self):
        assert make_roads(0, NJ) == []
        assert make_hydro(0, NJ) == []
        assert make_landuse(0, NJ) == []

    def test_square_root_rule(self):
        """Gueting & Schilling's observation (cited in Section 2): a
        sweep-line cuts O(sqrt(N)) rectangles.  Check the max cut stays
        within a constant factor of sqrt(N) as N grows 16x."""
        for n in (1000, 4000, 16000):
            roads = make_roads(n, NJ, seed=12)
            max_cut = max(sweep_cut_sizes(roads))
            assert max_cut <= 6 * np.sqrt(n), (n, max_cut)

    def test_selectivity_scale_invariant(self):
        """Output/roads ratio stays in the same band across scales —
        the property that makes the scaled reproduction meaningful."""
        from repro.core.brute import brute_force_pairs

        ratios = []
        for n_roads, n_hydro in ((800, 160), (3200, 640)):
            roads = make_roads(n_roads, NJ, seed=13, layout_seed=13)
            hydro = make_hydro(n_hydro, NJ, seed=14, layout_seed=13)
            ratios.append(len(brute_force_pairs(roads, hydro)) / n_roads)
        assert 0.15 <= ratios[0] <= 1.2
        assert 0.15 <= ratios[1] <= 1.2
        assert 0.3 <= ratios[1] / ratios[0] <= 3.0

    def test_generic_generators_shapes(self):
        u = Rect(0, 1, 0, 1, 0)
        assert len(uniform_rects(10, u, 0.1)) == 10
        assert len(clustered_rects(10, u, 0.1)) == 10
        assert len(stabbing_rects(10, u)) == 10
        assert len(grid_rects(4, u)) == 16

    def test_stabbing_rects_all_cut_midline(self):
        u = Rect(0, 1, 0, 1, 0)
        for r in stabbing_rects(50, u, seed=1):
            assert r.ylo <= 0.5 <= r.yhi

    def test_grid_rects_disjoint(self):
        from repro.core.brute import brute_force_pairs

        g = grid_rects(5, Rect(0, 1, 0, 1, 0), fill=0.9)
        pairs = brute_force_pairs(g, g)
        assert pairs == {(r.rid, r.rid) for r in g}


class TestNamedDatasets:
    def test_all_specs_present_in_order(self):
        assert set(DATASET_ORDER) == set(DATASET_SPECS)
        assert DATASET_ORDER[0] == "NJ" and DATASET_ORDER[-1] == "DISK1-6"

    def test_paper_cardinalities_recorded(self):
        assert DATASET_SPECS["NJ"].paper_roads == 414_442
        assert DATASET_SPECS["DISK1-6"].paper_hydro == 7_413_353
        assert DATASET_SPECS["NY"].paper_output == 421_110

    def test_scaled_counts(self):
        ds = build_dataset("NJ", QUICK_SCALE)
        assert len(ds.roads) == QUICK_SCALE.scaled_count(414_442)
        assert len(ds.hydro) == QUICK_SCALE.scaled_count(50_853)

    def test_cardinality_ordering_preserved(self):
        sizes = [
            len(build_dataset(name, QUICK_SCALE).roads)
            for name in DATASET_ORDER
        ]
        assert sizes == sorted(sizes)

    def test_roads_to_hydro_ratio_matches_paper(self):
        for name in ("NY", "DISK1-6"):
            spec = DATASET_SPECS[name]
            ds = build_dataset(name, QUICK_SCALE)
            paper_ratio = spec.paper_roads / spec.paper_hydro
            got_ratio = len(ds.roads) / len(ds.hydro)
            assert got_ratio == pytest.approx(paper_ratio, rel=0.1)

    def test_memoization(self):
        a = build_dataset("NJ", QUICK_SCALE)
        b = build_dataset("NJ", QUICK_SCALE)
        assert a is b
        clear_cache()
        c = build_dataset("NJ", QUICK_SCALE)
        assert c is not a
        assert c.roads == a.roads  # still deterministic

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            build_dataset("TX", QUICK_SCALE)

    def test_data_inside_region(self):
        ds = build_dataset("NY", QUICK_SCALE)
        assert all(contains(ds.universe, r) for r in ds.roads)
        assert all(contains(ds.universe, r) for r in ds.hydro)

    def test_byte_accounting(self):
        ds = build_dataset("NJ", QUICK_SCALE)
        assert ds.road_bytes == len(ds.roads) * 20
        assert ds.hydro_bytes == len(ds.hydro) * 20
