"""Multi-way intersection joins by PQ cascading (Section 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_pairs
from repro.core.multiway import multiway_join
from repro.data.generator import uniform_rects
from repro.data.tiger import make_hydro, make_landuse, make_roads
from repro.geom.rect import Rect, intersection
from repro.rtree.bulk_load import bulk_load
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def brute_three_way(a, b, c):
    """Oracle: all (i, j, k) whose left-fold intersection is non-empty."""
    out = set()
    for ra in a:
        for rb in b:
            ab = intersection(ra, rb)
            if ab is None:
                continue
            for rc in c:
                if ab.intersects(rc):
                    out.add((ra.rid, rb.rid, rc.rid))
    return out


class TestThreeWay:
    def _inputs(self, n=80, seed=1):
        a = uniform_rects(n, UNIT, 0.08, seed=seed)
        b = uniform_rects(n, UNIT, 0.08, seed=seed + 1, id_base=10_000)
        c = uniform_rects(n, UNIT, 0.08, seed=seed + 2, id_base=20_000)
        return a, b, c

    def test_matches_oracle_with_lists(self):
        from repro.core.sources import ListSource

        a, b, c = self._inputs()
        env = make_env()
        disk = Disk(env)
        res = multiway_join(
            [ListSource(a), ListSource(b), ListSource(c)],
            disk, universe=UNIT, collect_tuples=True,
        )
        assert set(res.pairs) == brute_three_way(a, b, c)
        assert res.algorithm == "PQ-3way"

    def test_matches_oracle_with_mixed_representations(self):
        a, b, c = self._inputs(seed=4)
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        tree_a = bulk_load(store, a)
        stream_b = Stream.from_rects(disk, b)
        tree_c = bulk_load(store, c)
        res = multiway_join(
            [tree_a, stream_b, tree_c], disk, universe=UNIT,
            collect_tuples=True,
        )
        assert set(res.pairs) == brute_three_way(a, b, c)

    def test_two_way_degenerates_to_pq(self):
        a, b, _ = self._inputs(seed=7)
        env = make_env()
        disk = Disk(env)
        res = multiway_join(
            [Stream.from_rects(disk, a), Stream.from_rects(disk, b)],
            disk, universe=UNIT, collect_tuples=True,
        )
        assert {(x, y) for x, y in res.pairs} == brute_force_pairs(a, b)

    def test_four_way(self):
        env = make_env()
        disk = Disk(env)
        rels = [
            uniform_rects(30, UNIT, 0.15, seed=10 + i, id_base=i * 1000)
            for i in range(4)
        ]
        res = multiway_join(
            [Stream.from_rects(disk, r) for r in rels],
            disk, universe=UNIT, collect_tuples=True,
        )
        # Oracle by folding.
        want = set()
        for t3 in brute_three_way(rels[0], rels[1], rels[2]):
            ra = next(r for r in rels[0] if r.rid == t3[0])
            rb = next(r for r in rels[1] if r.rid == t3[1])
            rc = next(r for r in rels[2] if r.rid == t3[2])
            abc = intersection(intersection(ra, rb), rc)
            for rd in rels[3]:
                if abc.intersects(rd):
                    want.add(t3 + (rd.rid,))
        assert set(res.pairs) == want

    def test_count_only_mode(self):
        a, b, c = self._inputs(seed=20)
        env = make_env()
        disk = Disk(env)
        from repro.core.sources import ListSource

        res = multiway_join(
            [ListSource(a), ListSource(b), ListSource(c)],
            disk, universe=UNIT,
        )
        assert res.n_pairs == len(brute_three_way(a, b, c))
        assert res.pairs is None

    def test_fewer_than_two_inputs_rejected(self):
        env = make_env()
        disk = Disk(env)
        with pytest.raises(ValueError):
            multiway_join([Stream.from_rects(disk, [])], disk)

    def test_empty_middle_relation(self):
        a, _, c = self._inputs(seed=30)
        env = make_env()
        disk = Disk(env)
        res = multiway_join(
            [Stream.from_rects(disk, a), Stream.from_rects(disk, []),
             Stream.from_rects(disk, c)],
            disk, universe=UNIT, collect_tuples=True,
        )
        assert res.n_pairs == 0

    def test_gis_three_way(self):
        from repro.data.datasets import DATASET_SPECS
        region = DATASET_SPECS["NJ"].region
        roads = make_roads(250, region, seed=1)
        hydro = make_hydro(60, region, seed=2, layout_seed=1)
        landuse = make_landuse(40, region, seed=3, layout_seed=1)
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        res = multiway_join(
            [bulk_load(store, roads), Stream.from_rects(disk, hydro),
             Stream.from_rects(disk, landuse)],
            disk, universe=region, collect_tuples=True,
        )
        assert set(res.pairs) == brute_three_way(roads, hydro, landuse)


class TestMultiwayProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(5, 40), st.integers(5, 40), st.integers(5, 40),
        st.integers(0, 500),
    )
    def test_property_three_way_matches_oracle(self, na, nb, nc, seed):
        from repro.core.sources import ListSource

        a = uniform_rects(na, UNIT, 0.12, seed=seed)
        b = uniform_rects(nb, UNIT, 0.12, seed=seed + 1, id_base=10_000)
        c = uniform_rects(nc, UNIT, 0.12, seed=seed + 2, id_base=20_000)
        env = make_env()
        disk = Disk(env)
        res = multiway_join(
            [ListSource(a), ListSource(b), ListSource(c)],
            disk, universe=UNIT, collect_tuples=True,
        )
        assert set(res.pairs) == brute_three_way(a, b, c)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_property_input_order_changes_tuple_order_not_set(self, seed):
        from repro.core.sources import ListSource

        a = uniform_rects(25, UNIT, 0.15, seed=seed)
        b = uniform_rects(25, UNIT, 0.15, seed=seed + 1, id_base=10_000)
        c = uniform_rects(25, UNIT, 0.15, seed=seed + 2, id_base=20_000)
        env = make_env()
        disk = Disk(env)
        abc = multiway_join(
            [ListSource(a), ListSource(b), ListSource(c)],
            disk, universe=UNIT, collect_tuples=True,
        )
        env2 = make_env()
        disk2 = Disk(env2)
        cba = multiway_join(
            [ListSource(c), ListSource(b), ListSource(a)],
            disk2, universe=UNIT, collect_tuples=True,
        )
        assert {tuple(sorted(t)) for t in abc.pairs} == {
            tuple(sorted(t)) for t in cba.pairs
        }
