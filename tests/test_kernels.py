"""Differential tests for the runtime-selected sweep kernels.

The contract under test: the numpy kernel is *bit-identical* to the
pure-python reference — same pairs, same emit order, same ``cpu_ops``
and ``max_active_items`` accounting — at every level it plugs in
(batched sweep, tile task, whole engine over serial/thread/process
pools).  Alongside parity, the suite pins kernel resolution semantics
(``auto``/``REPRO_KERNEL``/explicit) and the hygiene of shared-memory
tile shipping: segments are reference-counted, survive worker crashes,
and never outlive the engine.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core import kernels
from repro.core.columnar import COLUMN_BYTES_PER_RECT, ColumnarTile
from repro.core.sweep import forward_sweep_pairs_batched
from repro.engine import Query, SpatialQueryEngine, WorkerPool
from repro.engine import executor as executor_mod
from repro.engine.executor import _OpCounter, sweep_tile_task
from repro.geom.rect import Rect

from tests.conftest import (
    GENERATORS,
    TEST_SCALE,
    _clustered,
    _uniform,
    brute_reference,
)

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)

needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not importable"
)


def _pair_rids(pairs):
    return [(a.rid, b.rid) for a, b in pairs]


# -- kernel resolution -------------------------------------------------------


class TestResolveKernel:
    def test_explicit_python(self):
        assert kernels.resolve_kernel("python") == "python"

    def test_bad_name_raises(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            kernels.resolve_kernel("fortran")

    @needs_numpy
    def test_auto_prefers_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        assert kernels.resolve_kernel("auto") == "numpy"

    def test_env_var_forces_python_fallback(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "python")
        assert kernels.resolve_kernel("auto") == "python"
        # ...but never overrides an explicit request.
        if kernels.numpy_available():
            assert kernels.resolve_kernel("numpy") == "numpy"

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        monkeypatch.setattr(kernels, "_numpy_available", False)
        assert kernels.resolve_kernel("auto") == "python"

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_available", False)
        with pytest.raises(ValueError, match="not importable"):
            kernels.resolve_kernel("numpy")

    def test_engine_surfaces_resolved_kernel(self):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, workers=1, pool_kind="serial",
            kernel="python",
        )
        try:
            assert engine.kernel == "python"
            assert engine.metrics_snapshot()["kernel"] == "python"
        finally:
            engine.close()


# -- batched-sweep parity ----------------------------------------------------


@needs_numpy
class TestSweepParity:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_join_matches_python_exactly(self, name):
        rng = random.Random(hash(name) % 1000)
        a = GENERATORS[name](rng, 230)
        b = GENERATORS[name](rng, 170, 10_000)
        env_py, env_np = _OpCounter(), _OpCounter()
        pairs_py, stats_py = forward_sweep_pairs_batched(a, b, env_py)
        pairs_np, stats_np = kernels.sweep_pairs_batched(
            "numpy", a, b, env_np,
        )
        assert _pair_rids(pairs_np) == _pair_rids(pairs_py)
        assert stats_np == stats_py
        assert env_np.cpu_ops == env_py.cpu_ops

    def test_presorted_parity_and_validation(self):
        rng = random.Random(5)
        a = sorted(_uniform(rng, 200), key=lambda r: (r.ylo, r.xlo))
        b = sorted(_uniform(rng, 150, 10_000),
                   key=lambda r: (r.ylo, r.xlo))
        env_py, env_np = _OpCounter(), _OpCounter()
        pairs_py, stats_py = forward_sweep_pairs_batched(
            a, b, env_py, presorted=True,
        )
        pairs_np, stats_np = kernels.sweep_pairs_batched(
            "numpy", a, b, env_np, presorted=True,
        )
        assert _pair_rids(pairs_np) == _pair_rids(pairs_py)
        assert stats_np == stats_py
        assert env_np.cpu_ops == env_py.cpu_ops
        # A presorted=True claim over unsorted input is a caller bug:
        # the vectorized kernel rejects it instead of mis-sweeping.
        from repro.core.kernels import np_sweep
        shuffled = list(reversed(a))
        with pytest.raises(ValueError, match="not sorted by ylo"):
            np_sweep.sweep_pairs_batched(shuffled, b, _OpCounter(),
                                         presorted=True)

    def test_inverted_y_interval_falls_back(self):
        # yhi < ylo is outside the vectorized model; the dispatcher
        # must fall back to the python kernel, not crash or diverge.
        rng = random.Random(9)
        a = _uniform(rng, 120)
        a.append(Rect(0.4, 0.5, 0.6, 0.2, 9_999))  # inverted
        b = _uniform(rng, 90, 10_000)
        from repro.core.kernels import np_sweep
        assert np_sweep.sweep_pairs_batched(a, b, _OpCounter()) is None
        env_py, env_np = _OpCounter(), _OpCounter()
        pairs_py, stats_py = forward_sweep_pairs_batched(a, b, env_py)
        pairs_np, stats_np = kernels.sweep_pairs_batched(
            "numpy", a, b, env_np,
        )
        assert _pair_rids(pairs_np) == _pair_rids(pairs_py)
        assert stats_np == stats_py
        assert env_np.cpu_ops == env_py.cpu_ops

    def test_columnar_tile_inputs(self):
        rng = random.Random(13)
        a = _clustered(rng, 260)
        b = _clustered(rng, 260, 10_000)
        ta = ColumnarTile.from_rects(a)
        tb = ColumnarTile.from_rects(b)
        env_py, env_np = _OpCounter(), _OpCounter()
        pairs_py, stats_py = forward_sweep_pairs_batched(a, b, env_py)
        pairs_np, stats_np = kernels.sweep_pairs_batched(
            "numpy", ta, tb, env_np,
        )
        assert _pair_rids(pairs_np) == _pair_rids(pairs_py)
        assert stats_np == stats_py
        assert env_np.cpu_ops == env_py.cpu_ops


# -- tile-task parity --------------------------------------------------------


@needs_numpy
class TestTileTaskParity:
    GRID_SPEC = (0.0, 1.0, 0.0, 1.0, 2, 4)  # 2x2 tiles, 4 partitions

    def _run(self, side_a, side_b, self_join, window=None):
        """Both kernels over every partition; identical 4-tuples."""
        for part_id in range(self.GRID_SPEC[5]):
            out = {}
            for kernel in ("python", "numpy"):
                payload = (part_id, self.GRID_SPEC, side_a, side_b,
                           self_join, True, window, kernel)
                out[kernel] = sweep_tile_task(payload)
            assert out["numpy"] == out["python"], (
                f"kernel divergence on partition {part_id}"
            )

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_columnar_join(self, name, monkeypatch):
        monkeypatch.setattr(executor_mod, "NUMPY_MIN_TILE_RECTS", 1)
        rng = random.Random(len(name))
        ta = ColumnarTile.from_rects(GENERATORS[name](rng, 300))
        tb = ColumnarTile.from_rects(
            GENERATORS[name](rng, 240, 10_000),
        )
        self._run(ta, tb, False)

    def test_columnar_self_join(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "NUMPY_MIN_TILE_RECTS", 1)
        tile = ColumnarTile.from_rects(_clustered(random.Random(3), 320))
        self._run(tile, None, True)

    def test_windowed_join(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "NUMPY_MIN_TILE_RECTS", 1)
        rng = random.Random(21)
        ta = ColumnarTile.from_rects(_uniform(rng, 300))
        tb = ColumnarTile.from_rects(_uniform(rng, 240, 10_000))
        self._run(ta, tb, False, window=Rect(0.2, 0.7, 0.1, 0.6, 0))

    def test_rect_list_sides(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "NUMPY_MIN_LIST_RECTS", 1)
        rng = random.Random(27)
        self._run(_uniform(rng, 280), _uniform(rng, 200, 10_000), False)

    def test_below_cutoff_stays_python(self, monkeypatch):
        # Tiny tiles skip the vectorized path entirely — results are
        # identical by construction, so only the wall clock may differ.
        calls = []
        monkeypatch.setattr(executor_mod, "_np_sweep",
                            lambda: calls.append(1))
        tile = ColumnarTile.from_rects(_uniform(random.Random(1), 40))
        payload = (0, self.GRID_SPEC, tile, None, True, True, None,
                   "numpy")
        sweep_tile_task(payload)
        assert not calls, "numpy kernel engaged below the size cutoff"


# -- engine-level parity across pool kinds -----------------------------------


@needs_numpy
class TestEngineParity:
    def _engine(self, kernel, pool_kind, rects_a, rects_b):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, workers=2, pool_kind=pool_kind,
            cache_capacity=0, min_ship_rects=0, kernel=kernel,
            shm_min_bytes=0,
        )
        engine.register("a", rects_a, universe=UNIT)
        if rects_b is not None:
            engine.register("b", rects_b, universe=UNIT)
        return engine

    @pytest.mark.parametrize("pool_kind",
                             ("serial", "thread", "process"))
    def test_pairs_and_accounting_match(self, pool_kind, monkeypatch):
        monkeypatch.setattr(executor_mod, "NUMPY_MIN_TILE_RECTS", 1)
        monkeypatch.setattr(executor_mod, "NUMPY_MIN_LIST_RECTS", 1)
        rng = random.Random(17)
        a = GENERATORS["clustered"](rng, 300)
        b = GENERATORS["skewed"](rng, 260, 10_000)
        ref = sorted(brute_reference(a, b))
        query = Query(relations=("a", "b"))
        outcomes = {}
        for kernel in ("python", "numpy"):
            engine = self._engine(kernel, pool_kind, a, b)
            try:
                out = engine.execute(query)
                outcomes[kernel] = (
                    sorted(out.result.pairs),
                    engine.metrics.sim_wall_seconds,
                    engine.metrics_snapshot()["pages_read"],
                )
            finally:
                engine.close()
        assert outcomes["numpy"][0] == ref
        # Same pairs AND the same simulated cost: op accounting is
        # kernel-invariant, only the wall clock may move.
        assert outcomes["numpy"] == outcomes["python"]


# -- shared-memory shipping hygiene ------------------------------------------


class TestShmShipping:
    def test_pack_view_roundtrip(self):
        rects = _uniform(random.Random(2), 120)
        tile = ColumnarTile.from_rects(rects)
        buf = bytearray(64 + len(tile) * COLUMN_BYTES_PER_RECT)
        written = tile.pack_into(buf, 64)
        assert written == len(tile) * COLUMN_BYTES_PER_RECT
        view = ColumnarTile.view_over(memoryview(buf), 64, len(tile))
        assert len(view) == len(tile)
        assert view.decode() == tile.decode()

    def _shm_engine(self, shm_min_bytes):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, workers=2, pool_kind="process",
            cache_capacity=0, min_ship_rects=0, kernel="python",
            shm_min_bytes=shm_min_bytes,
        )
        rects = _clustered(random.Random(23), 400)
        engine.register("a", rects, universe=UNIT)
        return engine, rects

    def test_shm_and_pickle_agree_and_release(self):
        query = Query(relations=("a", "a"))
        results = {}
        for label, threshold in (("shm", 0), ("pickle", -1)):
            engine, rects = self._shm_engine(threshold)
            try:
                out = engine.execute(query)
                results[label] = sorted(out.result.pairs)
                shm = engine.worker_pool.shm
                if label == "shm":
                    assert shm.segments_created > 0
                else:
                    assert shm.segments_created == 0
            finally:
                engine.close()
            assert shm.open_segments == 0, "segments leaked past close"
        assert results["shm"] == results["pickle"]
        assert results["shm"] == sorted(brute_reference(rects))

    def test_worker_crash_leaks_nothing(self):
        from concurrent.futures import BrokenExecutor

        class _BrokenStub:
            def submit(self, fn, payload):
                raise BrokenExecutor("workers died")

            def shutdown(self, wait=True):
                pass

        query = Query(relations=("a", "a"))
        engine, rects = self._shm_engine(0)
        ref = sorted(brute_reference(rects))
        try:
            out = engine.execute(query)
            assert sorted(out.result.pairs) == ref
            # Rug-pull: the pool dies with shm-shipped tasks pending.
            # Recovery must re-run them inline against the coordinator's
            # own segments, then demote without leaking a single one.
            engine.worker_pool.pool._executor = _BrokenStub()
            out = engine.execute(query)
            assert sorted(out.result.pairs) == ref
        finally:
            engine.close()
        shm = engine.worker_pool.shm
        assert shm.open_segments == 0
        assert shm.mapped_segments == 0
        leftovers = [
            n for n in os.listdir("/dev/shm")
            if n.startswith(f"repro-{os.getpid()}-")
        ] if os.path.isdir("/dev/shm") else []
        assert not leftovers, f"leaked shm files: {leftovers}"

    def test_negative_threshold_disables_shm(self):
        engine, _ = self._shm_engine(-1)
        try:
            engine.execute(Query(relations=("a", "a")))
            snap = engine.worker_pool.snapshot()["shm"]
            assert snap["segments_created"] == 0
            assert snap["bytes_packed"] == 0
        finally:
            engine.close()
