"""Plane-sweep kernel: structures, driver, generator form, dedup rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_pairs
from repro.core.sweep import (
    ForwardSweep,
    StripedSweep,
    forward_sweep_pairs,
    sweep_join,
    sweep_join_iter,
)
from repro.data.generator import stabbing_rects, uniform_rects
from repro.geom.rect import Rect
from repro.sim.env import null_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def sorted_by_y(rects):
    return iter(sorted(rects, key=lambda r: (r.ylo, r.xlo, r.rid)))


def run_sweep(rects_a, rects_b, factory, **kw):
    env = null_env()
    pairs = []
    stats = sweep_join(
        sorted_by_y(rects_a),
        sorted_by_y(rects_b),
        factory,
        env,
        on_pair=lambda a, b: pairs.append((a.rid, b.rid)),
        **kw,
    )
    return stats, set(pairs), env


@st.composite
def rect_lists(draw, max_size=60):
    n = draw(st.integers(0, max_size))
    rects = []
    for i in range(n):
        x = draw(st.floats(0, 10, allow_nan=False))
        y = draw(st.floats(0, 10, allow_nan=False))
        w = draw(st.floats(0, 3, allow_nan=False))
        h = draw(st.floats(0, 3, allow_nan=False))
        rects.append(Rect(x, x + w, y, y + h, i))
    return rects


class TestForwardSweep:
    def test_matches_brute_force(self):
        a = uniform_rects(150, UNIT, 0.05, seed=1)
        b = uniform_rects(120, UNIT, 0.05, seed=2)
        _, pairs, _ = run_sweep(a, b, ForwardSweep)
        assert pairs == brute_force_pairs(a, b)

    def test_orientation_is_a_then_b(self):
        a = [Rect(0, 1, 0, 1, 100)]
        b = [Rect(0, 1, 0, 1, 200)]
        _, pairs, _ = run_sweep(a, b, ForwardSweep)
        assert pairs == {(100, 200)}

    def test_touching_rectangles_reported(self):
        a = [Rect(0, 1, 0, 1, 1)]
        b = [Rect(1, 2, 1, 2, 2)]  # corner touch
        _, pairs, _ = run_sweep(a, b, ForwardSweep)
        assert pairs == {(1, 2)}

    def test_expiry_evicts_dead_rects(self):
        s = ForwardSweep()
        s.insert(Rect(0, 1, 0.0, 0.1, 1))
        s.insert(Rect(0, 1, 0.0, 5.0, 2))
        out = []
        s.probe(Rect(0, 1, 1.0, 2.0, 3), 1.0,
                lambda a, b: out.append((a.rid, b.rid)), True)
        assert s.size_items == 1  # rect 1 expired at sweep_y=1.0
        assert out == [(3, 2)]

    def test_empty_inputs(self):
        stats, pairs, _ = run_sweep([], [], ForwardSweep)
        assert stats.pairs == 0 and pairs == set()

    def test_one_empty_side(self):
        a = uniform_rects(50, UNIT, 0.1, seed=3)
        stats, pairs, _ = run_sweep(a, [], ForwardSweep)
        assert pairs == set()

    def test_unsorted_input_raises(self):
        env = null_env()
        bad = iter([Rect(0, 1, 5, 6, 1), Rect(0, 1, 0, 1, 2)])
        with pytest.raises(ValueError, match="not sorted"):
            sweep_join(bad, iter([]), ForwardSweep, env)

    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), rect_lists())
    def test_property_equals_brute(self, a, b):
        _, pairs, _ = run_sweep(a, b, ForwardSweep)
        assert pairs == brute_force_pairs(a, b)


class TestStripedSweep:
    def _factory(self, nstrips=16):
        return lambda: StripedSweep(0.0, 1.0, nstrips)

    def test_matches_brute_force(self):
        a = uniform_rects(150, UNIT, 0.05, seed=4)
        b = uniform_rects(120, UNIT, 0.05, seed=5)
        _, pairs, _ = run_sweep(a, b, self._factory())
        assert pairs == brute_force_pairs(a, b)

    def test_matches_forward_sweep_exactly(self):
        a = uniform_rects(200, UNIT, 0.08, seed=6)
        b = uniform_rects(200, UNIT, 0.08, seed=7)
        _, striped, _ = run_sweep(a, b, self._factory())
        _, forward, _ = run_sweep(a, b, ForwardSweep)
        assert striped == forward

    def test_wide_rects_spanning_all_strips_not_duplicated(self):
        a = [Rect(0.0, 1.0, 0.0, 1.0, 1)]  # spans every strip
        b = [Rect(0.0, 1.0, 0.5, 0.6, 2)]
        env = null_env()
        pairs = []
        sweep_join(
            sorted_by_y(a), sorted_by_y(b), self._factory(8), env,
            on_pair=lambda x, y: pairs.append((x.rid, y.rid)),
        )
        assert pairs == [(1, 2)]  # exactly once despite 8 shared strips

    def test_single_strip_degenerates_to_forward(self):
        a = uniform_rects(80, UNIT, 0.1, seed=8)
        b = uniform_rects(80, UNIT, 0.1, seed=9)
        _, one_strip, _ = run_sweep(a, b, self._factory(1))
        assert one_strip == brute_force_pairs(a, b)

    def test_degenerate_universe(self):
        s = StripedSweep(5.0, 5.0, 16)  # zero-width universe
        assert s.nstrips == 1
        s.insert(Rect(5, 5, 0, 1, 1))
        assert s.size_items == 1

    def test_zero_strips_rejected(self):
        with pytest.raises(ValueError):
            StripedSweep(0.0, 1.0, 0)

    def test_striped_does_fewer_ops_on_spread_data(self):
        # The [4] claim behind the ablation: strips localize probes.
        a = uniform_rects(2000, UNIT, 0.002, seed=10)
        b = uniform_rects(2000, UNIT, 0.002, seed=11)
        s_stats, s_pairs, _ = run_sweep(a, b, self._factory(64))
        f_stats, f_pairs, _ = run_sweep(a, b, ForwardSweep)
        assert s_pairs == f_pairs
        assert s_stats.cpu_ops < f_stats.cpu_ops / 2

    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), rect_lists(), st.integers(1, 32))
    def test_property_equals_brute(self, a, b, nstrips):
        _, pairs, _ = run_sweep(
            a, b, lambda: StripedSweep(0.0, 13.0, nstrips)
        )
        assert pairs == brute_force_pairs(a, b)


class TestDriver:
    def test_max_active_tracked(self):
        a = stabbing_rects(100, UNIT, seed=1)
        stats, _, _ = run_sweep(a, a, ForwardSweep)
        # All 200 rectangles are co-active at the midline; the live
        # high-water mark is sampled at amortized compaction points,
        # so it is within 2x of the true peak.
        assert stats.max_active_items >= 100
        assert stats.max_active_bytes == stats.max_active_items * 20

    def test_overflow_flag(self):
        a = stabbing_rects(60, UNIT, seed=2)
        stats, _, _ = run_sweep(a, a, ForwardSweep, memory_items=30)
        assert stats.overflowed

    def test_no_overflow_below_limit(self):
        a = uniform_rects(60, UNIT, 0.01, seed=3)
        stats, _, _ = run_sweep(a, a, ForwardSweep, memory_items=10_000)
        assert not stats.overflowed

    def test_cpu_charged_to_env(self):
        a = uniform_rects(100, UNIT, 0.05, seed=4)
        _, _, env = run_sweep(a, a, ForwardSweep)
        assert env.cpu_ops > 0

    def test_count_only_mode(self):
        a = uniform_rects(80, UNIT, 0.1, seed=5)
        env = null_env()
        stats = sweep_join(sorted_by_y(a), sorted_by_y(a), ForwardSweep, env)
        assert stats.pairs == len(brute_force_pairs(a, a))


class TestSweepJoinIter:
    def test_yields_same_pairs_as_callback_form(self):
        a = uniform_rects(100, UNIT, 0.06, seed=6)
        b = uniform_rects(100, UNIT, 0.06, seed=7)
        env = null_env()
        got = {
            (x.rid, y.rid)
            for x, y in sweep_join_iter(
                sorted_by_y(a), sorted_by_y(b), ForwardSweep, env
            )
        }
        assert got == brute_force_pairs(a, b)

    def test_intersections_stream_in_sweep_order(self):
        # The invariant multi-way joins rely on: pair discovery order is
        # nondecreasing in max(ylo, ylo).
        from repro.geom.rect import intersection

        a = uniform_rects(150, UNIT, 0.08, seed=8)
        b = uniform_rects(150, UNIT, 0.08, seed=9)
        env = null_env()
        last = float("-inf")
        for x, y in sweep_join_iter(
            sorted_by_y(a), sorted_by_y(b), ForwardSweep, env
        ):
            inter = intersection(x, y)
            assert inter.ylo >= last
            last = inter.ylo


class TestForwardSweepPairs:
    def test_unsorted_inputs_handled(self):
        a = uniform_rects(60, UNIT, 0.1, seed=10)
        b = uniform_rects(60, UNIT, 0.1, seed=11)
        env = null_env()
        pairs = []
        forward_sweep_pairs(
            reversed(a), b, env,
            on_pair=lambda x, y: pairs.append((x.rid, y.rid)),
        )
        assert set(pairs) == brute_force_pairs(a, b)

    def test_presorted_skips_sort_charge(self):
        a = sorted(uniform_rects(60, UNIT, 0.1, seed=12),
                   key=lambda r: (r.ylo, r.xlo))
        env = null_env()
        before = env.cpu_ops
        forward_sweep_pairs(a, a, env, presorted=True)
        # only sweep ops, no sort charge category
        assert env.cpu_ops > before
