"""Spatial histograms: construction, selectivity, leaf fractions."""

import pytest

from repro.core.brute import brute_force_pairs
from repro.core.histogram import SpatialHistogram
from repro.data.generator import clustered_rects, uniform_rects
from repro.geom.rect import Rect

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


class TestConstruction:
    def test_counts_and_total(self):
        rects = uniform_rects(200, UNIT, 0.02, seed=1)
        h = SpatialHistogram.build(rects, UNIT, grid=8)
        assert h.total == 200
        assert sum(h.counts) == 200

    def test_out_of_universe_rects_clamped(self):
        h = SpatialHistogram(UNIT, grid=4)
        h.add(Rect(5.0, 6.0, 5.0, 6.0, 1))  # far outside
        assert h.total == 1
        assert h.counts[-1] == 1  # clamped to the last cell

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            SpatialHistogram(UNIT, grid=0)

    def test_occupied_cells(self):
        h = SpatialHistogram(UNIT, grid=4)
        h.add(Rect(0.1, 0.1, 0.1, 0.1, 1))
        h.add(Rect(0.12, 0.12, 0.12, 0.12, 2))
        h.add(Rect(0.9, 0.9, 0.9, 0.9, 3))
        assert h.occupied_cells() == 2


class TestJoinEstimate:
    def test_estimate_within_factor_of_truth_uniform(self):
        a = uniform_rects(400, UNIT, 0.03, seed=2)
        b = uniform_rects(300, UNIT, 0.03, seed=3)
        ha = SpatialHistogram.build(a, UNIT, grid=16)
        hb = SpatialHistogram.build(b, UNIT, grid=16)
        est = ha.estimate_join_pairs(hb)
        truth = len(brute_force_pairs(a, b))
        assert truth / 4 <= est <= truth * 4

    def test_estimate_zero_for_disjoint_regions(self):
        a = uniform_rects(100, Rect(0.0, 0.4, 0.0, 0.4, 0), 0.01, seed=4)
        b = uniform_rects(100, Rect(0.6, 1.0, 0.6, 1.0, 0), 0.01, seed=5)
        ha = SpatialHistogram.build(a, UNIT, grid=16)
        hb = SpatialHistogram.build(b, UNIT, grid=16)
        assert ha.estimate_join_pairs(hb) == 0.0

    def test_incompatible_histograms_rejected(self):
        ha = SpatialHistogram(UNIT, grid=8)
        hb = SpatialHistogram(UNIT, grid=16)
        with pytest.raises(ValueError):
            ha.estimate_join_pairs(hb)

    def test_estimate_symmetric(self):
        a = clustered_rects(200, UNIT, 0.02, seed=6)
        b = clustered_rects(150, UNIT, 0.02, seed=7)
        ha = SpatialHistogram.build(a, UNIT, grid=8)
        hb = SpatialHistogram.build(b, UNIT, grid=8)
        assert ha.estimate_join_pairs(hb) == pytest.approx(
            hb.estimate_join_pairs(ha)
        )

    def test_estimate_scales_with_density(self):
        a1 = uniform_rects(100, UNIT, 0.03, seed=8)
        a2 = uniform_rects(400, UNIT, 0.03, seed=8)
        b = uniform_rects(100, UNIT, 0.03, seed=9)
        hb = SpatialHistogram.build(b, UNIT, grid=8)
        est1 = SpatialHistogram.build(a1, UNIT, grid=8).estimate_join_pairs(hb)
        est2 = SpatialHistogram.build(a2, UNIT, grid=8).estimate_join_pairs(hb)
        assert est2 > est1


class TestLeafFraction:
    def test_none_window_is_everything(self):
        h = SpatialHistogram.build(
            uniform_rects(50, UNIT, 0.02, seed=10), UNIT
        )
        assert h.leaf_fraction(None) == 1.0

    def test_empty_histogram(self):
        h = SpatialHistogram(UNIT)
        assert h.leaf_fraction(UNIT) == 0.0

    def test_full_window_is_one(self):
        h = SpatialHistogram.build(
            uniform_rects(200, UNIT, 0.02, seed=11), UNIT, grid=8
        )
        assert h.leaf_fraction(UNIT) == pytest.approx(1.0)

    def test_disjoint_window_is_zero(self):
        h = SpatialHistogram.build(
            uniform_rects(200, UNIT, 0.02, seed=12), UNIT, grid=8
        )
        assert h.leaf_fraction(Rect(5, 6, 5, 6, 0)) == 0.0

    def test_half_window_about_half_for_uniform_data(self):
        h = SpatialHistogram.build(
            uniform_rects(2000, UNIT, 0.01, seed=13), UNIT, grid=32
        )
        frac = h.leaf_fraction(Rect(0.0, 0.5, 0.0, 1.0, 0))
        assert 0.35 <= frac <= 0.65

    def test_localized_data_fraction_tracks_mass(self):
        # 90% of the data in the left quarter: a window over the left
        # quarter should report ~0.9.
        left = uniform_rects(900, Rect(0.0, 0.25, 0.0, 1.0, 0), 0.01,
                             seed=14)
        right = uniform_rects(100, Rect(0.25, 1.0, 0.0, 1.0, 0), 0.01,
                              seed=15, id_base=1000)
        h = SpatialHistogram.build(left + right, UNIT, grid=32)
        frac = h.leaf_fraction(Rect(0.0, 0.25, 0.0, 1.0, 0))
        assert 0.8 <= frac <= 1.0

    def test_monotone_in_window_size(self):
        h = SpatialHistogram.build(
            clustered_rects(500, UNIT, 0.02, seed=16), UNIT, grid=16
        )
        small = h.leaf_fraction(Rect(0.4, 0.6, 0.4, 0.6, 0))
        large = h.leaf_fraction(Rect(0.2, 0.8, 0.2, 0.8, 0))
        assert small <= large
