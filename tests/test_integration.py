"""End-to-end integration: the full experiment pipeline at quick scale.

These tests run the complete paper pipeline — named dataset, streams,
bulk-loaded indexes, all five join algorithms, machine pricing — and
cross-check the pieces against each other, catching wiring regressions
that unit tests of individual modules cannot.
"""

import pytest

from repro.core.brute import brute_force_pairs
from repro.core.st_bfs import st_bfs_join
from repro.experiments.runner import (
    ALGORITHMS,
    prepare_experiment,
    run_algorithm,
)
from repro.sim.scale import QUICK_SCALE


@pytest.fixture(scope="module")
def ny():
    return prepare_experiment("NY", scale=QUICK_SCALE)


@pytest.fixture(scope="module")
def ny_runs(ny):
    return {a: run_algorithm(a, ny, collect_pairs=True)
            for a in ALGORITHMS}


class TestFullPipeline:
    def test_all_five_algorithms_compute_the_same_join(self, ny, ny_runs):
        truth = brute_force_pairs(ny.dataset.roads, ny.dataset.hydro)
        for a in ALGORITHMS:
            assert ny_runs[a]["result"].pair_set() == truth, a
        ny.env.reset_counters()
        bfs = st_bfs_join(ny.roads_tree, ny.hydro_tree,
                          collect_pairs=True)
        assert bfs.pair_set() == truth

    def test_trees_valid_after_all_runs(self, ny, ny_runs):
        # Joins must never mutate the indexes.
        ny.roads_tree.validate()
        ny.hydro_tree.validate()

    def test_observed_never_exceeds_estimated_io(self, ny_runs):
        # The naive model prices every access at the random rate, so it
        # upper-bounds the pattern-aware observation for reads-dominated
        # runs (writes can exceed it via the 1.5x penalty; PQ/ST do not
        # write).
        for a in ("PQ", "ST"):
            for snap in ny_runs[a]["machines"]:
                assert (
                    snap["io_seconds"] <= snap["estimated_io_seconds"] * 1.001
                ), (a, snap)

    def test_machine_ordering_consistent(self, ny_runs):
        # For identical event traces, the slow-CPU machine always has
        # the largest CPU time and machine 3 the smallest.
        for a in ALGORITHMS:
            cpu = [m["cpu_seconds"] for m in ny_runs[a]["machines"]]
            assert cpu[0] > cpu[1] > cpu[2], (a, cpu)

    def test_bytes_accounting_consistent(self, ny_runs):
        for a in ALGORITHMS:
            run = ny_runs[a]
            for snap in run["machines"]:
                assert snap["bytes_read"] == run["bytes_read"]
                assert snap["bytes_written"] == run["bytes_written"]

    def test_read_classification_partitions_reads(self, ny_runs):
        for a in ALGORITHMS:
            run = ny_runs[a]
            for snap in run["machines"]:
                classified = (
                    snap["reads_random"]
                    + snap["reads_sequential"]
                    + snap["reads_buffered"]
                )
                assert classified == run["page_reads"], (a, snap)

    def test_pq_reads_equal_lower_bound(self, ny, ny_runs):
        assert ny_runs["PQ"]["page_reads"] == ny.lower_bound_pages

    def test_stream_algorithms_do_not_touch_the_indexes(self, ny, ny_runs):
        # SSSJ and PBSM read strictly stream bytes: total bytes read is
        # a multiple-pass function of the data size, not the index size.
        data_bytes = (
            ny.dataset.road_bytes + ny.dataset.hydro_bytes
        )
        for a in ("SSSJ", "PBSM"):
            read = ny_runs[a]["bytes_read"]
            assert read <= 4 * data_bytes, (a, read, data_bytes)

    def test_deterministic_across_preparations(self):
        s1 = prepare_experiment("NJ", scale=QUICK_SCALE)
        s2 = prepare_experiment("NJ", scale=QUICK_SCALE)
        r1 = run_algorithm("SSSJ", s1)
        r2 = run_algorithm("SSSJ", s2)
        assert r1["result"].n_pairs == r2["result"].n_pairs
        assert r1["page_reads"] == r2["page_reads"]
        assert r1["cpu_ops"] == r2["cpu_ops"]
