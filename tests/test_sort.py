"""External mergesort: correctness, pass structure, CPU accounting."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geom.rect import Rect
from repro.sim.env import SimEnv
from repro.storage.disk import Disk
from repro.storage.sort import external_sort, sort_stream_by_ylo
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE, make_env


def rect_with_y(y: float, i: int) -> Rect:
    return Rect(float(i), float(i + 1), y, y + 1.0, i)


def shuffled_stream(disk, n, seed=0):
    rng = random.Random(seed)
    ys = [rng.uniform(0, 100) for _ in range(n)]
    return Stream.from_rects(
        disk, [rect_with_y(y, i) for i, y in enumerate(ys)]
    )


class TestCorrectness:
    def test_sorts_by_ylo(self, disk):
        s = shuffled_stream(disk, 500)
        out = sort_stream_by_ylo(s, disk)
        ys = [r.ylo for r in out.scan()]
        assert ys == sorted(ys)
        assert len(out) == 500

    def test_preserves_multiset(self, disk):
        s = shuffled_stream(disk, 300, seed=3)
        out = sort_stream_by_ylo(s, disk)
        assert sorted(s.scan()) == sorted(out.scan())

    def test_in_memory_case_single_run(self, disk):
        # Fewer records than the memory budget: degenerate single run.
        s = shuffled_stream(disk, 50)
        out = external_sort(s, disk, key=lambda r: (r.ylo,),
                            memory_rects=100)
        ys = [r.ylo for r in out.scan()]
        assert ys == sorted(ys)

    def test_empty_input(self, disk):
        s = Stream.from_rects(disk, [])
        out = sort_stream_by_ylo(s, disk)
        assert list(out.scan()) == []

    def test_on_record_observes_sorted_output_multirun(self, disk):
        # Capture during the merge: the observer sees exactly the
        # sorted output, in order, and the capture charges nothing.
        s = shuffled_stream(disk, 300, seed=5)
        captured = []
        env = disk.env
        out = external_sort(s, disk, key=lambda r: (r.ylo,),
                            memory_rects=32, on_record=captured.append)
        bytes_before = env.bytes_read
        assert captured == list(out.scan())
        # The reference scan above is the only read since the sort.
        assert env.bytes_read > bytes_before

    def test_on_record_observes_sorted_output_single_run(self, disk):
        # The degenerate in-memory case replays the one run silently.
        s = shuffled_stream(disk, 40, seed=6)
        captured = []
        env = disk.env
        out = external_sort(s, disk, key=lambda r: (r.ylo,),
                            memory_rects=100, on_record=captured.append)
        bytes_before = env.bytes_read
        assert captured == list(out.scan())
        assert env.bytes_read > bytes_before

    def test_on_record_charges_no_extra_io(self, disk):
        s = shuffled_stream(disk, 200, seed=7)
        env = disk.env
        before = (env.bytes_read, env.bytes_written)
        sort_stream_by_ylo(s, disk)
        plain = (env.bytes_read - before[0],
                 env.bytes_written - before[1])
        before = (env.bytes_read, env.bytes_written)
        sort_stream_by_ylo(s, disk, on_record=lambda r: None)
        observed = (env.bytes_read - before[0],
                    env.bytes_written - before[1])
        assert observed == plain

    def test_single_element(self, disk):
        s = Stream.from_rects(disk, [rect_with_y(5.0, 1)])
        out = sort_stream_by_ylo(s, disk)
        assert len(out) == 1

    def test_custom_key(self, disk):
        s = shuffled_stream(disk, 120, seed=9)
        out = external_sort(s, disk, key=lambda r: (-r.xlo,),
                            memory_rects=16)
        xs = [r.xlo for r in out.scan()]
        assert xs == sorted(xs, reverse=True)

    def test_duplicate_keys_stable_multiset(self, disk):
        rects = [rect_with_y(1.0, i) for i in range(100)]
        s = Stream.from_rects(disk, rects)
        out = external_sort(s, disk, key=lambda r: (r.ylo,),
                            memory_rects=16)
        assert sorted(out.scan()) == sorted(rects)

    def test_tiny_memory_rejected(self, disk):
        s = shuffled_stream(disk, 10)
        with pytest.raises(ValueError):
            external_sort(s, disk, key=lambda r: (r.ylo,), memory_rects=1)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=200),
           st.integers(2, 40))
    def test_property_matches_builtin_sorted(self, ys, mem):
        env = make_env()
        disk = Disk(env)
        s = Stream.from_rects(
            disk, [rect_with_y(y, i) for i, y in enumerate(ys)]
        )
        out = external_sort(s, disk, key=lambda r: (r.ylo, r.rid),
                            memory_rects=mem)
        got = [r.ylo for r in out.scan()]
        assert got == sorted(ys)


class TestPassStructure:
    def test_multirun_sort_io_passes(self):
        """The paper's accounting: run formation reads the input once and
        writes runs once; the merge reads runs once and writes output
        once — 2 reads + 2 writes of the data in blocks."""
        env = make_env()
        disk = Disk(env)
        s = shuffled_stream(disk, 600)  # memory is 204 rects -> 3 runs
        env.reset_counters()
        out = external_sort(s, disk, key=lambda r: (r.ylo,))
        nblocks = s.num_blocks
        assert env.page_reads == pytest.approx(2 * nblocks, abs=4)
        assert env.page_writes == pytest.approx(2 * nblocks, abs=4)
        assert len(out) == 600

    def test_in_memory_sort_is_one_read_one_write(self):
        env = make_env()
        disk = Disk(env)
        s = shuffled_stream(disk, 100)  # fits in the 204-rect budget
        env.reset_counters()
        external_sort(s, disk, key=lambda r: (r.ylo,))
        assert env.page_reads == s.num_blocks
        assert env.page_writes == pytest.approx(s.num_blocks, abs=1)

    def test_sort_charges_nlogn_cpu(self):
        env = make_env()
        disk = Disk(env)
        s = shuffled_stream(disk, 400)
        env.reset_counters()
        external_sort(s, disk, key=lambda r: (r.ylo,))
        sort_ops = env.observers[0].cpu_ops.get("sort", 0)
        assert sort_ops > 400  # at least n log n-ish work was charged
