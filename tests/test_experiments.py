"""Experiment harness: runner, report formatting, CLI."""

import json

import pytest

from repro.experiments.cli import main as cli_main, run_dataset
from repro.experiments.report import fmt_ratio, fmt_seconds, format_table
from repro.experiments.runner import (
    ALGORITHMS,
    prepare_experiment,
    run_algorithm,
)
from repro.sim.machines import MACHINE_1, MACHINE_3
from repro.sim.scale import QUICK_SCALE


@pytest.fixture(scope="module")
def nj_setup():
    return prepare_experiment("NJ", scale=QUICK_SCALE)


class TestRunner:
    def test_prepare_builds_everything(self, nj_setup):
        assert nj_setup.roads_tree is not None
        assert nj_setup.hydro_tree is not None
        assert len(nj_setup.roads_stream) == len(nj_setup.dataset.roads)
        assert nj_setup.lower_bound_pages == (
            nj_setup.roads_tree.page_count
            + nj_setup.hydro_tree.page_count
        )

    def test_counters_zero_after_prepare(self):
        setup = prepare_experiment("NJ", scale=QUICK_SCALE)
        assert setup.env.page_reads == 0
        assert setup.env.cpu_ops == 0

    def test_all_algorithms_agree_on_counts(self, nj_setup):
        counts = {
            a: run_algorithm(a, nj_setup)["result"].n_pairs
            for a in ALGORITHMS
        }
        assert len(set(counts.values())) == 1, counts

    def test_runs_start_from_fresh_counters(self, nj_setup):
        first = run_algorithm("PQ", nj_setup)
        second = run_algorithm("PQ", nj_setup)
        assert first["page_reads"] == second["page_reads"]
        assert first["cpu_ops"] == second["cpu_ops"]

    def test_snapshots_cover_all_machines(self, nj_setup):
        out = run_algorithm("SSSJ", nj_setup)
        names = [m["machine"] for m in out["machines"]]
        assert MACHINE_1.name in names and MACHINE_3.name in names

    def test_unknown_algorithm_rejected(self, nj_setup):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithm("NESTED-LOOP", nj_setup)

    def test_index_algorithms_require_trees(self):
        setup = prepare_experiment("NJ", scale=QUICK_SCALE,
                                   build_trees=False)
        with pytest.raises(ValueError, match="needs indexes"):
            run_algorithm("PQ", setup)
        with pytest.raises(ValueError, match="needs indexes"):
            run_algorithm("ST", setup)
        # Stream algorithms still work.
        out = run_algorithm("SSSJ", setup)
        assert out["result"].n_pairs >= 0

    def test_collect_pairs_passthrough(self, nj_setup):
        out = run_algorithm("SSSJ", nj_setup, collect_pairs=True)
        assert out["result"].pairs is not None
        assert len(out["result"].pairs) == out["result"].n_pairs


class TestReport:
    def test_format_table_basic(self):
        text = format_table(
            ["Name", "Value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[2]
        assert any("bb" in ln for ln in lines)

    def test_numeric_right_alignment(self):
        text = format_table(["K", "N"], [["x", 5], ["y", 500]])
        rows = text.splitlines()[-2:]
        # Both numbers end at the same column (right-aligned).
        assert rows[0].rstrip().endswith("5")
        assert rows[1].rstrip().endswith("500")

    def test_thousands_separator(self):
        text = format_table(["K", "N"], [["x", 1234567]])
        assert "1,234,567" in text

    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(123.4) == "123"
        assert fmt_seconds(1.234) == "1.23"
        assert fmt_seconds(0.01234) == "0.0123"
        assert fmt_seconds(float("nan")) == "-"

    def test_fmt_ratio(self):
        assert fmt_ratio(2.0, 1.0) == "2.00"
        assert fmt_ratio(1.0, 0.0) == "-"
        assert fmt_ratio(float("nan"), 1.0) == "-"


class TestCLI:
    def test_run_dataset_produces_rows(self):
        text = run_dataset("NJ", ["SSSJ", "PQ"], QUICK_SCALE)
        assert "SSSJ" in text and "PQ" in text
        assert "Machine 1" in text and "Machine 3" in text

    def test_cli_main_single_dataset(self, capsys):
        rc = cli_main(["--dataset", "NJ", "--scale", "quick",
                       "--algorithms", "SSSJ"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NJ (scale 1/1024)" in out
        assert "SSSJ" in out

    def test_cli_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            cli_main(["--dataset", "TEXAS"])

    def test_cli_json_rows(self, capsys):
        rc = cli_main(["--dataset", "NJ", "--scale", "quick",
                       "--algorithms", "SSSJ", "--json"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(ln) for ln in lines]
        assert len(rows) == 3  # one per machine
        for row in rows:
            assert row["dataset"] == "NJ"
            assert row["algorithm"] == "SSSJ"
            assert row["pairs"] >= 0
            assert row["observed_seconds"] > 0
        # All machines price the same run, so raw counters agree.
        assert len({row["page_reads"] for row in rows}) == 1

    def test_cli_serve_bench(self, capsys):
        rc = cli_main(["serve-bench", "--dataset", "NJ", "--scale",
                       "quick", "--queries", "8", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve-bench NJ" in out
        assert "cache hit rate" in out

    def test_cli_serve_bench_json(self, capsys):
        rc = cli_main(["serve-bench", "--dataset", "NJ", "--scale",
                       "quick", "--queries", "8", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 8
        assert report["metrics"]["queries_served"] == 8
        assert report["sim_wall_seconds"] > 0
