"""Unified planner: relation catalog, strategy choice, execution."""

import math

import pytest

from repro.core.brute import brute_force_pairs
from repro.core.histogram import SpatialHistogram
from repro.core.planner import (
    Relation,
    candidate_estimates,
    choose_method,
    unified_spatial_join,
)
from repro.data.generator import uniform_rects
from repro.geom.rect import Rect
from repro.rtree.bulk_load import bulk_load
from repro.sim.machines import MACHINE_3
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def build_world(n_a=400, n_b=150, region_a=UNIT, region_b=UNIT,
                index_a=True, index_b=True, seed=1):
    env = make_env()
    disk = Disk(env)
    store = PageStore(disk, TEST_SCALE.index_page_bytes)
    a = uniform_rects(n_a, region_a, 0.02, seed=seed)
    b = uniform_rects(n_b, region_b, 0.03, seed=seed + 1, id_base=100_000)
    rel_a = Relation(
        name="a",
        stream=Stream.from_rects(disk, a),
        tree=bulk_load(store, a) if index_a else None,
        universe=region_a,
        histogram=SpatialHistogram.build(a, region_a, grid=16),
    )
    rel_b = Relation(
        name="b",
        stream=Stream.from_rects(disk, b),
        tree=bulk_load(store, b) if index_b else None,
        universe=region_b,
        histogram=SpatialHistogram.build(b, region_b, grid=16),
    )
    env.reset_counters()
    return env, disk, a, b, rel_a, rel_b


class TestRelation:
    def test_requires_some_representation(self):
        with pytest.raises(ValueError):
            Relation(name="empty")

    def test_universe_defaults_to_tree_mbr(self):
        env, disk, a, b, rel_a, _ = build_world()
        rel = Relation(name="x", tree=rel_a.tree)
        assert rel.universe == rel_a.tree.root_mbr()

    def test_fraction_in_full_window(self):
        _, _, _, _, rel_a, _ = build_world(seed=2)
        assert rel_a.fraction_in(None) == 1.0

    def test_fraction_in_partial_window_uses_histogram(self):
        _, _, _, _, rel_a, _ = build_world(seed=3)
        frac = rel_a.fraction_in(Rect(0.0, 0.3, 0.0, 1.0, 0))
        assert 0.1 < frac < 0.6

    def test_fraction_without_histogram_uses_area(self):
        env, disk, a, _, rel_a, _ = build_world(seed=4)
        rel = Relation(name="x", tree=rel_a.tree, universe=UNIT)
        frac = rel.fraction_in(Rect(0.0, 0.5, 0.0, 1.0, 0))
        assert frac == pytest.approx(0.5, abs=0.1)

    def test_fraction_histogram_beats_area_fallback(self):
        # All data in the left half; a right-half window: the histogram
        # sees (almost) nothing, the MBR-area fallback would guess 50%.
        _, _, _, _, rel_a, _ = build_world(
            region_a=Rect(0.0, 0.5, 0.0, 1.0, 0), seed=20,
        )
        rel_a.universe = UNIT
        window = Rect(0.6, 1.0, 0.0, 1.0, 0)
        with_hist = rel_a.fraction_in(window)
        rel_a.histogram = None
        without = rel_a.fraction_in(window)
        assert with_hist < 0.05
        assert without == pytest.approx(0.4, abs=0.01)

    def test_fraction_without_universe_is_one(self):
        env, disk, a, _, rel_a, _ = build_world(seed=21)
        rel = Relation(name="x", stream=rel_a.stream)
        assert rel.universe is None
        assert rel.fraction_in(Rect(0.0, 0.1, 0.0, 0.1, 0)) == 1.0

    def test_fraction_disjoint_window_is_zero(self):
        env, disk, a, _, rel_a, _ = build_world(seed=22)
        rel = Relation(name="x", tree=rel_a.tree, universe=UNIT)
        assert rel.fraction_in(Rect(3.0, 4.0, 3.0, 4.0, 0)) == 0.0


class TestChooseMethod:
    def test_dense_overlap_prefers_sorting(self):
        # Both relations cover the same region: the join touches every
        # leaf, so the index path loses (fraction 1 > f*).
        _, _, _, _, rel_a, rel_b = build_world(seed=5)
        strategy, est = choose_method(rel_a, rel_b, MACHINE_3, TEST_SCALE)
        assert strategy == "sssj"

    def test_localized_join_prefers_index(self):
        # Relation B occupies a sliver of A's region: the pruned index
        # traversal reads a small fraction of A's leaves.
        wide = Rect(0.0, 16.0, 0.0, 1.0, 0)
        sliver = Rect(7.1, 7.3, 0.0, 1.0, 0)
        _, _, _, _, rel_a, rel_b = build_world(
            n_a=3000, n_b=40, region_a=wide, region_b=sliver, seed=6,
        )
        strategy, est = choose_method(rel_a, rel_b, MACHINE_3, TEST_SCALE)
        assert strategy in ("pq-index", "pq-mixed-a", "pq-mixed-b")

    def test_no_indexes_forces_sssj(self):
        _, _, _, _, rel_a, rel_b = build_world(index_a=False,
                                               index_b=False, seed=7)
        strategy, _ = choose_method(rel_a, rel_b, MACHINE_3, TEST_SCALE)
        assert strategy == "sssj"

    def test_estimate_returned(self):
        _, _, _, _, rel_a, rel_b = build_world(seed=8)
        _, est = choose_method(rel_a, rel_b, MACHINE_3, TEST_SCALE)
        assert est.io_seconds > 0 and math.isfinite(est.io_seconds)

    def test_candidate_estimates_lists_all_feasible(self):
        _, _, _, _, rel_a, rel_b = build_world(seed=23)
        names = [n for n, _ in candidate_estimates(
            rel_a, rel_b, MACHINE_3, TEST_SCALE
        )]
        assert names == ["pq-index", "pq-mixed-a", "pq-mixed-b", "sssj"]

    def test_tie_break_prefers_earlier_candidate(self, monkeypatch):
        # Equal estimates everywhere: min() is stable, so the first
        # candidate — the indexed path — must win the tie.
        from repro.core.cost_model import CostModel, JoinCostEstimate

        flat = JoinCostEstimate("flat", 1.0, "forced tie")
        monkeypatch.setattr(
            CostModel, "estimate_pq_indexed",
            lambda self, *a, **k: flat,
        )
        monkeypatch.setattr(
            CostModel, "estimate_pq_mixed",
            lambda self, *a, **k: flat,
        )
        monkeypatch.setattr(
            CostModel, "estimate_sssj",
            lambda self, *a, **k: flat,
        )
        _, _, _, _, rel_a, rel_b = build_world(seed=24)
        strategy, est = choose_method(rel_a, rel_b, MACHINE_3, TEST_SCALE)
        assert strategy == "pq-index"
        assert est.io_seconds == 1.0


class TestUnifiedJoin:
    def test_auto_choice_correct(self):
        env, disk, a, b, rel_a, rel_b = build_world(seed=9)
        res = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3,
                                   collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.detail["strategy"] in (
            "pq-index", "pq-mixed-a", "pq-mixed-b", "sssj",
        )

    @pytest.mark.parametrize("force", ["pq-index", "pq-mixed-a",
                                       "pq-mixed-b", "sssj"])
    def test_every_forced_strategy_correct(self, force):
        env, disk, a, b, rel_a, rel_b = build_world(seed=10)
        res = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3,
                                   collect_pairs=True, force=force)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.detail["strategy"] == force

    def test_unknown_strategy_rejected(self):
        env, disk, a, b, rel_a, rel_b = build_world(seed=11)
        with pytest.raises(ValueError):
            unified_spatial_join(rel_a, rel_b, disk, MACHINE_3,
                                 force="nested-loop")

    def test_localized_join_prunes_io(self):
        # The Section 6.3 scenario end-to-end: Minnesota-style hydro
        # against nationwide roads — the planner's choice should beat
        # forced SSSJ in simulated I/O seconds.
        wide = Rect(0.0, 16.0, 0.0, 1.0, 0)
        sliver = Rect(7.1, 7.3, 0.0, 1.0, 0)
        env, disk, a, b, rel_a, rel_b = build_world(
            n_a=4000, n_b=60, region_a=wide, region_b=sliver, seed=12,
        )
        auto = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3,
                                    collect_pairs=True)
        auto_io = env.observer_for(MACHINE_3).io_seconds
        env.reset_counters()
        forced = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3,
                                      collect_pairs=True, force="sssj")
        sssj_io = env.observer_for(MACHINE_3).io_seconds
        assert auto.pair_set() == forced.pair_set()
        assert auto.detail["strategy"] != "sssj"
        assert auto_io < sssj_io

    def test_detail_carries_estimate_and_machine(self):
        env, disk, a, b, rel_a, rel_b = build_world(seed=13)
        res = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3)
        assert res.detail["machine"] == MACHINE_3.name
        assert "estimated_io_seconds" in res.detail

    @pytest.mark.parametrize("force", ["pq-index", "pq-mixed-a",
                                       "pq-mixed-b", "sssj"])
    def test_forced_strategy_priced_with_real_model(self, force):
        # A forced run must carry the cost model's estimate for that
        # strategy (not NaN), so ablation tables stay comparable.
        env, disk, a, b, rel_a, rel_b = build_world(seed=14)
        expected = dict(candidate_estimates(
            rel_a, rel_b, MACHINE_3, TEST_SCALE
        ))[force]
        res = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3,
                                   force=force)
        assert math.isfinite(res.detail["estimated_io_seconds"])
        assert res.detail["estimated_io_seconds"] == pytest.approx(
            expected.io_seconds
        )
