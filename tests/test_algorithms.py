"""Per-algorithm behaviour: SSSJ passes & fallback, PBSM partitions &
dedup, ST pooling, PQ optimality and input mixes."""

import pytest

from repro.core.brute import brute_force_pairs
from repro.core.pbsm import PBSMConfig, pbsm_join
from repro.core.pq_join import PQConfig, pq_join
from repro.core.sources import ListSource
from repro.core.sssj import SSSJConfig, sssj_join
from repro.core.st_join import STConfig, st_join
from repro.data.generator import (
    clustered_rects,
    grid_rects,
    stabbing_rects,
    uniform_rects,
)
from repro.geom.rect import Rect
from repro.rtree.bulk_load import bulk_load
from repro.rtree.insert import RTreeBuilder
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def setup_streams(n=300, seed=1):
    env = make_env()
    disk = Disk(env)
    a = clustered_rects(n, UNIT, 0.03, seed=seed)
    b = clustered_rects(n // 3, UNIT, 0.05, seed=seed + 1)
    sa = Stream.from_rects(disk, a, name="a")
    sb = Stream.from_rects(disk, b, name="b")
    env.reset_counters()
    return env, disk, a, b, sa, sb


def setup_trees(n=300, seed=1, builder=None):
    env = make_env()
    disk = Disk(env)
    store = PageStore(disk, TEST_SCALE.index_page_bytes)
    a = clustered_rects(n, UNIT, 0.03, seed=seed)
    b = clustered_rects(n // 3, UNIT, 0.05, seed=seed + 1)
    ta = bulk_load(store, a, name="a")
    tb = bulk_load(store, b, name="b")
    env.reset_counters()
    return env, disk, store, a, b, ta, tb


class TestSSSJ:
    def test_correctness(self):
        env, disk, a, b, sa, sb = setup_streams()
        res = sssj_join(sa, sb, disk, universe=UNIT, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.algorithm == "SSSJ"

    def test_forward_structure_gives_same_answer(self):
        env, disk, a, b, sa, sb = setup_streams(seed=2)
        res = sssj_join(sa, sb, disk, universe=UNIT,
                        config=SSSJConfig(structure="forward"),
                        collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_universe_derived_when_missing(self):
        env, disk, a, b, sa, sb = setup_streams(seed=3)
        res = sssj_join(sa, sb, disk, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_no_fallback_on_real_like_data(self):
        # The paper: the structures "always fit"; depth stays 0.
        env, disk, a, b, sa, sb = setup_streams(seed=4)
        res = sssj_join(sa, sb, disk, universe=UNIT)
        assert res.detail["fallback_depth"] == 0

    def test_fallback_triggers_on_stabbing_data_and_stays_correct(self):
        env = make_env()
        disk = Disk(env)
        a = stabbing_rects(300, UNIT, seed=5)
        b = stabbing_rects(300, UNIT, seed=6)
        sa = Stream.from_rects(disk, a)
        sb = Stream.from_rects(disk, b)
        res = sssj_join(sa, sb, disk, universe=UNIT, collect_pairs=True,
                        config=SSSJConfig(memory_items=64))
        assert res.detail["fallback_depth"] >= 1
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_fallback_dedup_no_duplicates(self):
        env = make_env()
        disk = Disk(env)
        a = stabbing_rects(200, UNIT, seed=7)
        sa = Stream.from_rects(disk, a)
        sb = Stream.from_rects(disk, a)
        res = sssj_join(sa, sb, disk, universe=UNIT, collect_pairs=True,
                        config=SSSJConfig(memory_items=64))
        assert len(res.pairs) == len(res.pair_set())

    def test_pass_structure_two_seq_reads_one_merge_read_two_writes(self):
        """Section 3.1: 2 sequential read passes, 1 non-sequential read
        pass (merging), 2 sequential write passes, excluding output."""
        env = make_env()
        disk = Disk(env)
        # Big enough that each input needs a multi-run external sort.
        a = uniform_rects(600, UNIT, 0.005, seed=8)
        b = uniform_rects(500, UNIT, 0.005, seed=9)
        sa = Stream.from_rects(disk, a)
        sb = Stream.from_rects(disk, b)
        env.reset_counters()
        sssj_join(sa, sb, disk, universe=UNIT)
        nblocks = sa.num_blocks + sb.num_blocks
        # 3 read passes and 2 write passes over the data, in blocks.
        assert env.page_reads == pytest.approx(3 * nblocks, rel=0.15)
        assert env.page_writes == pytest.approx(2 * nblocks, rel=0.15)

    def test_memory_reported(self):
        env, disk, a, b, sa, sb = setup_streams(seed=10)
        res = sssj_join(sa, sb, disk, universe=UNIT)
        assert res.max_memory_bytes > 0

    def test_empty_inputs(self):
        env = make_env()
        disk = Disk(env)
        sa = Stream.from_rects(disk, [])
        sb = Stream.from_rects(disk, uniform_rects(10, UNIT, 0.1))
        res = sssj_join(sa, sb, disk, universe=UNIT, collect_pairs=True)
        assert res.n_pairs == 0


class TestPBSM:
    def test_correctness(self):
        env, disk, a, b, sa, sb = setup_streams()
        res = pbsm_join(sa, sb, disk, universe=UNIT, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.algorithm == "PBSM"

    def test_no_duplicate_pairs_despite_replication(self):
        env, disk, a, b, sa, sb = setup_streams(seed=11)
        res = pbsm_join(sa, sb, disk, universe=UNIT, collect_pairs=True,
                        config=PBSMConfig(tiles_per_side=8, partitions=5))
        assert len(res.pairs) == len(res.pair_set())
        assert res.detail["replicated_a"] >= len(a)

    def test_single_partition(self):
        env, disk, a, b, sa, sb = setup_streams(seed=12)
        res = pbsm_join(sa, sb, disk, universe=UNIT, collect_pairs=True,
                        config=PBSMConfig(partitions=1))
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_many_partitions(self):
        env, disk, a, b, sa, sb = setup_streams(seed=13)
        res = pbsm_join(sa, sb, disk, universe=UNIT, collect_pairs=True,
                        config=PBSMConfig(tiles_per_side=16, partitions=12))
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_partition_count_from_memory_budget(self):
        env, disk, a, b, sa, sb = setup_streams(n=900, seed=14)
        res = pbsm_join(sa, sb, disk, universe=UNIT)
        import math

        want = math.ceil((sa.data_bytes + sb.data_bytes)
                         / TEST_SCALE.memory_bytes)
        assert res.detail["partitions"] == want

    def test_too_few_tiles_rejected(self):
        env, disk, a, b, sa, sb = setup_streams(seed=15)
        with pytest.raises(ValueError):
            pbsm_join(sa, sb, disk, universe=UNIT,
                      config=PBSMConfig(tiles_per_side=2, partitions=10))

    def test_finer_tiles_balance_partitions(self):
        # The paper's 32x32 -> 128x128 fix: with clustered data, finer
        # tiling reduces the largest partition.
        env = make_env()
        disk = Disk(env)
        a = clustered_rects(1200, UNIT, 0.01, n_clusters=2, spread=0.02,
                            seed=16)
        b = clustered_rects(400, UNIT, 0.01, n_clusters=2, spread=0.02,
                            seed=17)
        sa = Stream.from_rects(disk, a)
        sb = Stream.from_rects(disk, b)
        coarse = pbsm_join(sa, sb, disk, universe=UNIT,
                           config=PBSMConfig(tiles_per_side=4, partitions=8))
        fine = pbsm_join(sa, sb, disk, universe=UNIT,
                         config=PBSMConfig(tiles_per_side=32, partitions=8))
        assert (fine.detail["max_partition_bytes"]
                <= coarse.detail["max_partition_bytes"])

    def test_replication_detail(self):
        env, disk, a, b, sa, sb = setup_streams(seed=18)
        res = pbsm_join(sa, sb, disk, universe=UNIT)
        assert res.detail["replicated_b"] >= len(b)


class TestST:
    def test_correctness(self):
        env, disk, store, a, b, ta, tb = setup_trees()
        res = st_join(ta, tb, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.algorithm == "ST"

    def test_different_stores_rejected(self):
        env1, _, _, _, _, ta, _ = setup_trees(seed=19)
        env2, _, _, _, _, _, tb = setup_trees(seed=20)
        with pytest.raises(ValueError):
            st_join(ta, tb)

    def test_disjoint_trees_zero_io_after_roots(self):
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        left = uniform_rects(200, Rect(0, 1, 0, 1, 0), 0.02, seed=21)
        right = uniform_rects(
            200, Rect(5, 6, 5, 6, 0), 0.02, seed=22, id_base=1000
        )
        ta = bulk_load(store, left)
        tb = bulk_load(store, right)
        env.reset_counters()
        res = st_join(ta, tb, collect_pairs=True)
        assert res.n_pairs == 0
        assert res.detail["disk_reads"] <= 2  # just the two roots

    def test_small_trees_fit_pool_reads_bounded_by_pages(self):
        # Table 4's NJ/NY regime: everything fits in the pool, so disk
        # reads never exceed the page count (pruning may go below).
        env, disk, store, a, b, ta, tb = setup_trees(n=400, seed=23)
        pool_pages = ta.page_count + tb.page_count + 4
        res = st_join(ta, tb, config=STConfig(buffer_pool_pages=pool_pages))
        assert res.detail["disk_reads"] <= ta.page_count + tb.page_count

    def test_tiny_pool_causes_rereads(self):
        # Table 4's DISK* regime: pool much smaller than the trees.
        env, disk, store, a, b, ta, tb = setup_trees(n=2500, seed=24)
        res = st_join(ta, tb, config=STConfig(buffer_pool_pages=4))
        assert res.detail["disk_reads"] > ta.page_count + tb.page_count

    def test_height_mismatch(self):
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        big = clustered_rects(1500, UNIT, 0.02, seed=25)
        small = clustered_rects(20, UNIT, 0.08, seed=26)
        ta = bulk_load(store, big)
        tb = bulk_load(store, small)
        assert ta.height > tb.height
        res = st_join(ta, tb, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(big, small)

    def test_dynamic_trees_joinable(self):
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        a = uniform_rects(300, UNIT, 0.03, seed=27)
        b = uniform_rects(100, UNIT, 0.05, seed=28)
        ba = RTreeBuilder(store, "a")
        ba.extend(a)
        bb = RTreeBuilder(store, "b")
        bb.extend(b)
        res = st_join(ba.finish(), bb.finish(), collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_page_requests_at_least_disk_reads(self):
        env, disk, store, a, b, ta, tb = setup_trees(seed=29)
        res = st_join(ta, tb)
        assert res.detail["page_requests"] >= res.detail["disk_reads"]


class TestPQ:
    def test_two_indexes(self):
        env, disk, store, a, b, ta, tb = setup_trees()
        res = pq_join(ta, tb, disk, universe=UNIT, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.algorithm == "PQ"

    def test_index_and_stream(self):
        env, disk, store, a, b, ta, tb = setup_trees(seed=30)
        sb = Stream.from_rects(disk, b)
        res = pq_join(ta, sb, disk, universe=UNIT, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_two_streams(self):
        env, disk, a, b, sa, sb = setup_streams(seed=31)
        res = pq_join(sa, sb, disk, universe=UNIT, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_list_sources(self):
        env = make_env()
        disk = Disk(env)
        a = uniform_rects(200, UNIT, 0.04, seed=32)
        b = uniform_rects(80, UNIT, 0.05, seed=33)
        res = pq_join(ListSource(a), ListSource(b), disk, universe=UNIT,
                      collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_optimal_page_accesses(self):
        # Table 4: PQ touches every index page exactly once.
        env, disk, store, a, b, ta, tb = setup_trees(n=900, seed=34)
        env.reset_counters()
        res = pq_join(ta, tb, disk, universe=UNIT)
        assert env.page_reads == ta.page_count + tb.page_count
        assert res.detail["pages_read_a"] == ta.page_count
        assert res.detail["pages_read_b"] == tb.page_count

    def test_memory_detail_split(self):
        env, disk, store, a, b, ta, tb = setup_trees(seed=35)
        res = pq_join(ta, tb, disk, universe=UNIT)
        assert res.max_memory_bytes == (
            res.detail["sweep_bytes"] + res.detail["queue_bytes"]
        )

    def test_forward_structure_matches(self):
        env, disk, store, a, b, ta, tb = setup_trees(seed=36)
        res = pq_join(ta, tb, disk, universe=UNIT,
                      config=PQConfig(structure="forward"),
                      collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_pruned_traversal_correct_on_localized_inputs(self):
        # Section 6.3's localized join: only the overlapping region of
        # the big input participates.
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        wide = Rect(0.0, 8.0, 0.0, 1.0, 0)
        local = Rect(3.0, 4.0, 0.0, 1.0, 0)
        big = uniform_rects(2000, wide, 0.02, seed=37)
        small = uniform_rects(100, local, 0.03, seed=38, id_base=5000)
        tb_big = bulk_load(store, big)
        tb_small = bulk_load(store, small)
        env.reset_counters()
        pruned = pq_join(tb_big, tb_small, disk,
                         config=PQConfig(prune=True), collect_pairs=True)
        pruned_reads = env.page_reads
        assert pruned.pair_set() == brute_force_pairs(big, small)
        env.reset_counters()
        full = pq_join(tb_big, tb_small, disk, collect_pairs=True)
        assert pruned.pair_set() == full.pair_set()
        assert pruned_reads < env.page_reads

    def test_unknown_input_type_rejected(self):
        env = make_env()
        disk = Disk(env)
        with pytest.raises(TypeError):
            pq_join([Rect(0, 1, 0, 1, 0)], [Rect(0, 1, 0, 1, 1)], disk)

    def test_dynamic_tree_as_input(self):
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        a = uniform_rects(400, UNIT, 0.02, seed=39)
        b = uniform_rects(150, UNIT, 0.04, seed=40)
        builder = RTreeBuilder(store)
        builder.extend(a)
        res = pq_join(builder.finish(), Stream.from_rects(disk, b), disk,
                      universe=UNIT, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
