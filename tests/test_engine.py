"""The serving engine: catalog, optimizer, executor, caches, metrics."""

from __future__ import annotations

import pytest

from repro.core.brute import brute_force_pairs
from repro.core.columnar import ColumnarTile
from repro.data.generator import uniform_rects
from repro.engine import (
    AdmissionError,
    Query,
    ResultCache,
    SpatialQueryEngine,
    make_workload,
    run_workload,
)
from repro.geom.rect import Rect, intersection
from repro.sim.machines import MACHINE_3

from tests.conftest import TEST_SCALE

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def make_engine(workers: int = 1, cache_capacity: int = 16,
                n_a: int = 300, n_b: int = 120,
                region: Rect = UNIT) -> SpatialQueryEngine:
    engine = SpatialQueryEngine(
        scale=TEST_SCALE, machine=MACHINE_3, workers=workers,
        cache_capacity=cache_capacity,
    )
    a = uniform_rects(n_a, region, 0.02, seed=1)
    b = uniform_rects(n_b, region, 0.03, seed=2, id_base=100_000)
    engine.register("a", a, universe=region)
    engine.register("b", b, universe=region)
    engine._test_rects = (a, b)  # stashed for equivalence checks
    return engine


class TestCatalog:
    def test_register_and_lazy_build(self):
        engine = make_engine()
        entry = engine.catalog.get("a")
        assert not entry.has_tree
        assert entry.tree.num_objects == 300
        assert entry.has_tree
        assert engine.catalog.indexes_built == 1
        # Second access reuses the built tree.
        assert entry.tree is entry.tree
        assert engine.catalog.indexes_built == 1

    def test_reregister_bumps_version(self):
        engine = make_engine()
        v1 = engine.catalog.get("a").version
        engine.register("a", engine._test_rects[0], universe=UNIT)
        assert engine.catalog.get("a").version > v1

    def test_unknown_relation(self):
        engine = make_engine()
        with pytest.raises(KeyError, match="unknown relation"):
            engine.catalog.get("nope")

    def test_empty_relation_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="no rectangles"):
            engine.register("empty", [])

    def test_index_persistence_roundtrip(self, tmp_path):
        engine = make_engine()
        path = str(tmp_path / "a.rpqt")
        engine.catalog.save_index("a", path)
        other = make_engine()
        tree = other.catalog.load_index("a", path)
        assert tree.num_objects == 300
        assert other.catalog.get("a").has_tree


class TestQueryValidation:
    def test_needs_two_relations(self):
        with pytest.raises(ValueError, match="at least two"):
            Query(relations=("a",))

    def test_pairwise_self_join_allowed(self):
        q = Query(relations=("a", "a"))
        assert q.is_self_join and not q.is_multiway

    def test_multiway_self_join_rejected(self):
        with pytest.raises(ValueError, match="self-join"):
            Query(relations=("a", "b", "a"))

    def test_windowed_count_only_rejected(self):
        with pytest.raises(ValueError, match="post-filter"):
            Query(relations=("a", "b"), window=UNIT, collect_pairs=False)

    def test_multiway_refine_rejected(self):
        with pytest.raises(ValueError, match="pairwise"):
            Query(relations=("a", "b", "c"), refine=True)

    def test_multiway_force_rejected(self):
        with pytest.raises(ValueError, match="pairwise"):
            Query(relations=("a", "b", "c"), force="sssj")


class TestExecution:
    def test_full_join_matches_brute_force(self):
        engine = make_engine()
        a, b = engine._test_rects
        out = engine.execute(Query(relations=("a", "b")))
        assert not out.from_cache
        assert out.result.pair_set() == brute_force_pairs(a, b)

    def test_windowed_join_matches_filtered_brute_force(self):
        engine = make_engine()
        a, b = engine._test_rects
        window = Rect(0.2, 0.5, 0.1, 0.6, 0)
        out = engine.execute(Query(relations=("a", "b"), window=window))
        # Brute-force reference with the same window semantics: the
        # pair's common intersection must meet the window.
        by_id_a = {r.rid: r for r in a}
        by_id_b = {r.rid: r for r in b}
        expected = set()
        for ra_id, rb_id in brute_force_pairs(a, b):
            inter = intersection(by_id_a[ra_id], by_id_b[rb_id])
            if inter is not None and inter.intersects(window):
                expected.add((ra_id, rb_id))
        assert out.result.pair_set() == expected
        assert "window_filtered" in out.result.detail

    def test_partitioned_matches_direct(self):
        serial = make_engine(workers=1)
        parallel = make_engine(workers=4)
        q = Query(relations=("a", "b"))
        res_s = serial.execute(q).result
        res_p = parallel.execute(q).result
        assert res_p.detail["strategy"] == "pbsm-grid"
        assert res_p.pair_set() == res_s.pair_set()
        assert res_p.detail["sweep_ops_critical"] <= (
            res_p.detail["sweep_ops_total"]
        )
        assert res_p.detail["parallel_cpu_seconds_saved"] >= 0.0

    def test_forced_strategy_respected(self):
        engine = make_engine()
        out = engine.execute(Query(relations=("a", "b"), force="sssj"))
        assert out.result.detail["strategy"] == "sssj"

    def test_empty_window_shortcut(self):
        engine = make_engine()
        far = Rect(5.0, 6.0, 5.0, 6.0, 0)
        out = engine.execute(Query(relations=("a", "b"), window=far))
        assert out.result.n_pairs == 0
        assert out.plan.mode == "empty"
        # The empty plan touches no data at all.
        assert engine.metrics.pages_read == 0

    def test_multiway_query(self):
        engine = make_engine()
        c = uniform_rects(80, UNIT, 0.05, seed=3, id_base=200_000)
        engine.register("c", c, universe=UNIT)
        out = engine.execute(Query(relations=("a", "b", "c")))
        assert out.plan.mode == "multiway"
        assert out.result.n_pairs >= 0
        assert all(len(t) == 3 for t in out.result.pairs)

    def test_st_strategy_uses_shared_pool(self):
        engine = make_engine()
        engine.prepare()
        out = engine.execute(Query(relations=("a", "b"), force="st"))
        assert out.result.detail["strategy"] == "st"
        assert engine.pool.requests > 0
        snap = engine.metrics_snapshot()
        assert snap["buffer_pool_requests"] == engine.pool.requests

    def test_st_detail_reports_per_join_deltas(self):
        # A second ST run over the warm shared pool must report its own
        # page requests, not the pool's lifetime totals.
        engine = make_engine(cache_capacity=0)
        engine.prepare()
        first = engine.execute(Query(relations=("a", "b"), force="st"))
        second = engine.execute(Query(relations=("a", "b"), force="st"))
        assert second.result.detail["page_requests"] == (
            first.result.detail["page_requests"]
        )
        # Warm pool: the repeat join's misses can only shrink.
        assert second.result.detail["disk_reads"] <= (
            first.result.detail["disk_reads"]
        )

    def test_auto_index_off_never_builds_trees(self):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, auto_index=False,
        )
        a = uniform_rects(200, UNIT, 0.02, seed=5)
        b = uniform_rects(80, UNIT, 0.03, seed=6, id_base=100_000)
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        out = engine.execute(Query(relations=("a", "b")))
        assert out.result.detail["strategy"] == "sssj"
        assert engine.catalog.indexes_built == 0

    def test_forced_engine_strategy_priced(self):
        import math

        engine = make_engine()
        engine.prepare()
        window = Rect(0.1, 0.6, 0.1, 0.6, 0)
        out = engine.execute(
            Query(relations=("a", "b"), window=window, force="st")
        )
        assert out.result.detail["strategy"] == "st"
        assert math.isfinite(out.plan.estimate.io_seconds)
        out = engine.execute(Query(relations=("a", "b"),
                                   force="pbsm-grid"))
        assert out.result.detail["strategy"] == "pbsm-grid"
        assert math.isfinite(
            out.result.detail["estimated_io_seconds"]
        )

    def test_lazy_builds_charged_to_first_query(self):
        # No prepare(): the first query triggers stream/index/histogram
        # construction, and those pages must appear in its metrics.
        engine = make_engine()
        engine.execute(Query(relations=("a", "b")))
        assert engine.metrics.pages_read == engine.env.page_reads
        assert engine.metrics.pages_written == engine.env.page_writes

    def test_refinement_filters_pairs(self):
        engine = SpatialQueryEngine(scale=TEST_SCALE, machine=MACHINE_3)
        # Two crossing segments and two parallel (non-crossing) ones
        # whose MBRs all intersect pairwise.
        geoms_a = {1: [(0.0, 0.0), (1.0, 1.0)]}
        geoms_b = {
            10: [(0.0, 1.0), (1.0, 0.0)],   # crosses a#1
            11: [(0.0, 0.1), (0.8, 0.9)],   # parallel-ish, no crossing
        }
        rect_a = [Rect(0.0, 1.0, 0.0, 1.0, 1)]
        rect_b = [Rect(0.0, 1.0, 0.0, 1.0, 10),
                  Rect(0.0, 0.9, 0.0, 1.0, 11)]
        engine.register("a", rect_a, universe=UNIT, geometries=geoms_a)
        engine.register("b", rect_b, universe=UNIT, geometries=geoms_b)
        filtered = engine.execute(Query(relations=("a", "b")))
        refined = engine.execute(
            Query(relations=("a", "b"), refine=True)
        )
        assert filtered.result.n_pairs == 2
        assert refined.result.pair_set() == {(1, 10)}
        assert refined.result.detail["refined_out"] == 1


class TestResultCache:
    def test_repeat_query_is_cache_hit(self):
        engine = make_engine()
        q = Query(relations=("a", "b"))
        first = engine.execute(q)
        pages_after_first = engine.metrics.pages_read
        second = engine.execute(q)
        assert not first.from_cache and second.from_cache
        assert second.result.n_pairs == first.result.n_pairs
        assert second.result.detail.get("cache_hit") is True
        # Served from memory: no further I/O.
        assert engine.metrics.pages_read == pages_after_first
        assert engine.metrics.cache_hits == 1

    def test_reregistration_invalidates(self):
        engine = make_engine()
        q = Query(relations=("a", "b"))
        engine.execute(q)
        engine.register("a", engine._test_rects[0], universe=UNIT)
        out = engine.execute(q)
        assert not out.from_cache

    def test_equivalent_windows_share_entries(self):
        engine = make_engine()
        w1 = Rect(0.1, 0.4, 0.1, 0.4, 0)
        w2 = Rect(0.1, 0.4, 0.1, 0.4, 99)  # same region, different id
        engine.execute(Query(relations=("a", "b"), window=w1))
        out = engine.execute(Query(relations=("a", "b"), window=w2))
        assert out.from_cache

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("k1", 1)
        cache.put("k2", 2)
        assert cache.get("k1") == 1  # refresh k1
        cache.put("k3", 3)           # evicts k2
        assert cache.get("k2") is None
        assert cache.get("k1") == 1 and cache.get("k3") == 3
        assert cache.evictions == 1

    def test_zero_capacity_never_caches(self):
        engine = make_engine(cache_capacity=0)
        q = Query(relations=("a", "b"))
        engine.execute(q)
        assert not engine.execute(q).from_cache

    def test_caller_mutation_cannot_corrupt_cache(self):
        engine = make_engine()
        q = Query(relations=("a", "b"))
        first = engine.execute(q)
        n = first.result.n_pairs
        first.result.pairs.clear()          # caller abuses its copy
        first.result.detail["strategy"] = "vandalized"
        second = engine.execute(q)
        assert second.from_cache
        assert len(second.result.pairs) == n
        assert second.result.detail["strategy"] != "vandalized"
        # ...and mutating the hit's copy leaves the cache intact too.
        second.result.pairs.clear()
        third = engine.execute(q)
        assert len(third.result.pairs) == n


class TestMemoryGovernance:
    def test_spill_path_matches_in_memory_results(self):
        # A budget far below the tile footprint (420 rects x 20 B plus
        # replication) forces partitioned tiles to spill; the answer
        # must be identical to the roomy run and the spill counters
        # must say it happened.
        roomy = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            memory_bytes=1_000_000,
        )
        tight_budget = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            memory_bytes=3000,
        )
        a = uniform_rects(300, UNIT, 0.02, seed=1)
        b = uniform_rects(120, UNIT, 0.03, seed=2, id_base=100_000)
        for engine in (roomy, tight_budget):
            engine.register("a", a, universe=UNIT)
            engine.register("b", b, universe=UNIT)

        q = Query(relations=("a", "b"), force="pbsm-grid")
        ref = roomy.execute(q).result
        out = tight_budget.execute(q).result
        assert out.pair_set() == ref.pair_set()
        assert out.detail["spilled_rects"] > 0
        assert out.detail["spill_partitions"] > 0
        assert tight_budget.metrics.spilled_rects == (
            out.detail["spilled_rects"]
        )
        assert tight_budget.metrics.spill_queries == 1
        # The roomy engine never spilled.
        assert ref.detail["spilled_rects"] == 0

    def test_admission_control_rejects_impossible_queries(self):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, memory_bytes=2000,
        )
        a = uniform_rects(100, UNIT, 0.02, seed=1)
        b = uniform_rects(50, UNIT, 0.03, seed=2, id_base=100_000)
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        with pytest.raises(AdmissionError, match="minimum grant"):
            engine.execute(Query(relations=("a", "b")))
        assert engine.metrics.queries_rejected == 1
        assert engine.metrics.queries_executed == 0

    def test_budget_high_water_in_snapshot(self):
        engine = make_engine(workers=2)
        engine.execute(Query(relations=("a", "b"), force="pbsm-grid"))
        snap = engine.metrics_snapshot()
        assert snap["budget_total_bytes"] == engine.budget.total_bytes
        assert 0 < snap["budget_high_water_bytes"]
        assert "tiles" in snap["budget_high_water_by_category"]
        assert snap["result_cache_bytes"] == engine.cache.bytes_used
        assert snap["result_cache_bytes"] > 0  # the result was cached

    def test_explain_shows_memory_verdict(self):
        engine = make_engine(workers=2)
        engine.prepare()
        text = engine.explain(
            Query(relations=("a", "b"), force="pbsm-grid")
        )
        assert "Memory" in text and "budget" in text

    def test_cache_bytes_bound_enforced_end_to_end(self):
        # A byte-capped cache admits the small windowed result but
        # refuses to hold the big overlay.
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, cache_bytes=4096,
        )
        a = uniform_rects(300, UNIT, 0.02, seed=1)
        b = uniform_rects(120, UNIT, 0.03, seed=2, id_base=100_000)
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        small = Query(relations=("a", "b"),
                      window=Rect(0.1, 0.25, 0.1, 0.25, 0))
        big = Query(relations=("a", "b"))
        engine.execute(big)
        engine.execute(small)
        assert engine.cache.oversized_rejections >= 1
        assert engine.cache.bytes_used <= 4096
        assert engine.execute(small).from_cache
        assert not engine.execute(big).from_cache


class TestSelfJoin:
    def test_self_join_matches_brute_force(self):
        engine = make_engine(workers=2)
        a, _ = engine._test_rects
        out = engine.execute(Query(relations=("a", "a")))
        expected = {
            (ra.rid, rb.rid)
            for i, ra in enumerate(a)
            for rb in a[i + 1:]
            if ra.intersects(rb)
        }
        assert out.result.pair_set() == expected
        assert out.result.detail["strategy"] == "pbsm-grid"
        assert out.result.detail["self_join"] is True
        # Each unordered pair appears exactly once, ordered rid_a < rid_b.
        assert all(x < y for x, y in out.result.pairs)

    def test_self_join_single_worker(self):
        serial = make_engine(workers=1)
        parallel = make_engine(workers=4)
        q = Query(relations=("a", "a"))
        assert (serial.execute(q).result.pair_set()
                == parallel.execute(q).result.pair_set())

    def test_windowed_self_join(self):
        engine = make_engine(workers=2)
        a, _ = engine._test_rects
        window = Rect(0.2, 0.6, 0.2, 0.6, 0)
        out = engine.execute(Query(relations=("a", "a"), window=window))
        expected = set()
        for i, ra in enumerate(a):
            for rb in a[i + 1:]:
                inter = intersection(ra, rb)
                if inter is not None and inter.intersects(window):
                    expected.add((min(ra.rid, rb.rid),
                                  max(ra.rid, rb.rid)))
        assert out.result.pair_set() == expected

    def test_self_join_is_cacheable(self):
        engine = make_engine(workers=2)
        q = Query(relations=("a", "a"))
        first = engine.execute(q)
        second = engine.execute(q)
        assert not first.from_cache and second.from_cache
        assert second.result.n_pairs == first.result.n_pairs

    def test_self_join_rejects_foreign_force(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="pbsm-grid"):
            engine.execute(Query(relations=("a", "a"), force="sssj"))


class TestMultiwayPricing:
    def test_cascaded_estimate_uses_histograms(self):
        engine = make_engine()
        c = uniform_rects(80, UNIT, 0.05, seed=3, id_base=200_000)
        engine.register("c", c, universe=UNIT)
        plan = engine.optimizer.compile(Query(relations=("a", "b", "c")))
        assert plan.strategy == "pq-multiway"
        assert "cascaded pairwise" in plan.estimate.detail
        assert "histogram intermediates" in plan.estimate.detail
        assert plan.estimate.io_seconds > 0

    def test_larger_cascade_costs_more(self):
        engine = make_engine()
        c = uniform_rects(80, UNIT, 0.05, seed=3, id_base=200_000)
        d = uniform_rects(60, UNIT, 0.05, seed=4, id_base=300_000)
        engine.register("c", c, universe=UNIT)
        engine.register("d", d, universe=UNIT)
        three = engine.optimizer.compile(
            Query(relations=("a", "b", "c"))
        ).estimate.io_seconds
        four = engine.optimizer.compile(
            Query(relations=("a", "b", "c", "d"))
        ).estimate.io_seconds
        assert four > three

    def test_mixed_universes_still_priced(self):
        # Relations registered on different universes force fresh
        # histograms on the union MBR.
        engine = make_engine()
        shifted = Rect(0.5, 1.5, 0.5, 1.5, 0)
        c = uniform_rects(80, shifted, 0.05, seed=3, id_base=200_000)
        engine.register("c", c, universe=shifted)
        plan = engine.optimizer.compile(Query(relations=("a", "b", "c")))
        assert plan.estimate.io_seconds > 0


class TestMetricsAndWorkload:
    def test_snapshot_accounts_queries(self):
        engine = make_engine()
        q = Query(relations=("a", "b"))
        engine.execute(q)
        engine.execute(q)
        snap = engine.metrics_snapshot()
        assert snap["queries_served"] == 2
        assert snap["queries_executed"] == 1
        assert snap["cache_hits"] == 1
        assert snap["cache_hit_rate"] == 0.5
        assert snap["pages_read"] > 0
        assert snap["sim_wall_seconds"] > 0
        assert snap["per_strategy"]  # at least one strategy recorded

    def test_explain_names_candidates_and_choice(self):
        engine = make_engine()
        text = engine.explain(Query(relations=("a", "b")))
        assert "Candidates:" in text
        assert "Chosen" in text
        assert "sssj" in text

    def test_workload_runs_and_reports(self):
        engine = make_engine(workers=2, cache_capacity=32)
        # make_workload targets relations named roads/hydro.
        engine.register("roads", engine._test_rects[0], universe=UNIT)
        engine.register("hydro", engine._test_rects[1], universe=UNIT)
        queries = make_workload(UNIT, 12, seed=3)
        report = run_workload(engine, queries)
        assert report["queries"] == 12
        assert report["sim_wall_seconds"] > 0
        assert report["metrics"]["queries_served"] == 12

    def test_run_workload_reports_deltas(self):
        engine = make_engine(cache_capacity=0)
        engine.register("roads", engine._test_rects[0], universe=UNIT)
        engine.register("hydro", engine._test_rects[1], universe=UNIT)
        queries = make_workload(UNIT, 6, seed=4)
        first = run_workload(engine, queries)
        second = run_workload(engine, queries)
        # Per-workload sim seconds, not the engine's lifetime clock.
        assert first["sim_wall_seconds"] + second["sim_wall_seconds"] == (
            pytest.approx(engine.metrics.sim_wall_seconds)
        )


class TestParallelPool:
    """Persistent worker pool: equality, shipping, fallback, accounting."""

    def _engines(self, **kw):
        serial = make_engine(workers=3, cache_capacity=0)
        other = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=3,
            cache_capacity=0, min_ship_rects=0, **kw,
        )
        a, b = serial._test_rects
        other.register("a", a, universe=UNIT)
        other.register("b", b, universe=UNIT)
        return serial, other

    def test_process_pool_matches_serial_random_workloads(self):
        rng_seeds = [(31, 32), (41, 42)]
        for sa, sb in rng_seeds:
            a = uniform_rects(350, UNIT, 0.02, seed=sa)
            b = uniform_rects(150, UNIT, 0.035, seed=sb, id_base=100_000)
            serial = SpatialQueryEngine(
                scale=TEST_SCALE, machine=MACHINE_3, workers=3,
                cache_capacity=0, pool_kind="serial",
            )
            proc = SpatialQueryEngine(
                scale=TEST_SCALE, machine=MACHINE_3, workers=3,
                cache_capacity=0, pool_kind="process", min_ship_rects=0,
            )
            for e in (serial, proc):
                e.register("a", a, universe=UNIT)
                e.register("b", b, universe=UNIT)
            q = Query(relations=("a", "b"), force="pbsm-grid")
            rs = serial.execute(q).result
            rp = proc.execute(q).result
            assert rp.detail["pool_kind"] == "process"
            assert rp.detail["tasks_shipped"] > 0
            assert rp.pair_set() == rs.pair_set()
            # Op/byte accounting must not depend on where sweeps ran.
            assert (rp.detail["sweep_ops_total"]
                    == rs.detail["sweep_ops_total"])
            assert proc.env.cpu_ops == serial.env.cpu_ops
            assert proc.env.bytes_read == serial.env.bytes_read
            proc.close()

    def test_process_pool_self_join_matches_serial(self):
        a = uniform_rects(300, UNIT, 0.025, seed=51)
        serial = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="serial",
        )
        proc = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="process", min_ship_rects=0,
        )
        for e in (serial, proc):
            e.register("a", a, universe=UNIT)
        q = Query(relations=("a", "a"))
        rs = serial.execute(q).result
        rp = proc.execute(q).result
        assert rp.pair_set() == rs.pair_set()
        assert all(x < y for x, y in rp.pairs)
        assert rp.detail["tasks_shipped"] > 0
        proc.close()

    def test_thread_pool_matches_serial(self):
        serial, threaded = self._engines(pool_kind="thread")
        q = Query(relations=("a", "b"), force="pbsm-grid")
        rs = serial.execute(q).result
        rt = threaded.execute(q).result
        assert rt.pair_set() == rs.pair_set()
        assert threaded.worker_pool.kind == "thread"
        threaded.close()

    def test_small_tasks_stay_inline(self):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=3,
            cache_capacity=0, pool_kind="process",
            min_ship_rects=10**9,
        )
        a, b = make_engine()._test_rects
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        out = engine.execute(Query(relations=("a", "b"),
                                   force="pbsm-grid")).result
        assert out.detail["tasks_shipped"] == 0
        assert not engine.worker_pool.started  # never even created
        engine.close()

    def test_pool_is_persistent_across_queries(self):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="thread", min_ship_rects=0,
        )
        a, b = make_engine()._test_rects
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(q)
        engine.execute(Query(relations=("a", "a")))
        assert engine.worker_pool.pools_created == 1
        assert engine.worker_pool.tasks_dispatched > 0
        assert engine.metrics_snapshot()["worker_pool"]["kind"] == "thread"
        engine.close()

    def test_close_is_idempotent_and_context_manager(self):
        with SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
        ) as engine:
            engine.register("a", make_engine()._test_rects[0],
                            universe=UNIT)
        engine.close()  # second close is a no-op


class TestPartitionArtifacts:
    """The distribute phase runs once per distinct plan, not per query."""

    def _engine(self, **kw):
        kw.setdefault("memory_bytes", 10_000_000)
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, **kw,
        )
        a = uniform_rects(300, UNIT, 0.02, seed=1)
        b = uniform_rects(120, UNIT, 0.03, seed=2, id_base=100_000)
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        engine._test_rects = (a, b)
        return engine

    def test_repeat_hits_artifact_and_skips_distribute(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        first = engine.execute(q).result
        assert first.detail["artifact_hit"] is False
        bytes_before = engine.env.bytes_read
        second = engine.execute(q).result
        assert second.detail["artifact_hit"] is True
        assert second.pair_set() == first.pair_set()
        # No scan, no distribute: the warm run reads nothing at all.
        assert engine.env.bytes_read == bytes_before
        assert engine.artifacts.hits == 1
        # The warm run charges the same sweep ops as the cold run.
        assert (second.detail["sweep_ops_total"]
                == first.detail["sweep_ops_total"])

    def test_windowed_query_reuses_full_distribution(self):
        engine = self._engine()
        overlay = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(overlay)
        window = Rect(0.2, 0.5, 0.1, 0.6, 0)
        wq = Query(relations=("a", "b"), window=window)
        warm = engine.execute(wq).result
        assert warm.detail["strategy"] == "pbsm-grid"
        assert warm.detail["artifact_hit"] is True
        # Reference: a fresh engine, same window, any strategy.
        fresh = self._engine()
        cold = fresh.execute(Query(relations=("a", "b"),
                                   window=window)).result
        assert warm.pair_set() == cold.pair_set()

    def test_self_join_artifacts_are_reused(self):
        engine = self._engine()
        q = Query(relations=("a", "a"))
        first = engine.execute(q).result
        second = engine.execute(q).result
        assert second.detail["artifact_hit"] is True
        assert second.pair_set() == first.pair_set()

    def test_reregistration_invalidates_artifacts(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(q)
        assert len(engine.artifacts) == 1
        engine.register("a", engine._test_rects[0], universe=UNIT)
        assert len(engine.artifacts) == 0
        assert engine.artifacts.invalidations == 1
        out = engine.execute(q).result
        assert out.detail["artifact_hit"] is False

    def test_spilled_distributions_are_not_cached(self):
        engine = self._engine(memory_bytes=3000)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        out = engine.execute(q).result
        assert out.detail["spilled_rects"] > 0
        assert len(engine.artifacts) == 0
        repeat = engine.execute(q).result
        assert repeat.detail["artifact_hit"] is False
        assert repeat.pair_set() == out.pair_set()

    def test_artifact_cache_disabled_by_zero_bytes(self):
        engine = self._engine(artifact_cache_bytes=0)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(q)
        assert len(engine.artifacts) == 0
        assert engine.execute(q).result.detail["artifact_hit"] is False

    def test_budget_eviction_of_artifacts(self):
        from repro.engine.cache import PartitionArtifactCache
        from repro.engine.resources import ResourceBudget

        budget = ResourceBudget(10_000)
        cache = PartitionArtifactCache(budget=budget)
        tiles = [
            ColumnarTile.from_rects(
                uniform_rects(40, UNIT, 0.02, seed=s)
            )
            for s in range(6)
        ]
        for s, tile in enumerate(tiles):
            cache.put(((("r", s),), (0, 1, 0, 1), 32, 8, None),
                      [(0, tile, None)])
        # 40 rects cost ~2.9 KB each once the decode memo is counted:
        # a 10 KB budget holds only a few, so LRU eviction must run
        # and the ledger must stay within the budget.
        assert cache.evictions > 0
        assert cache.bytes_used <= budget.total_bytes
        assert budget.used_by("artifacts") == cache.bytes_used
        # make_room reclaims artifact bytes for execution grants.
        cache.make_room(budget.total_bytes)
        assert len(cache) == 0
        assert budget.used_by("artifacts") == 0

    def test_snapshot_surfaces_artifact_and_pool_stats(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(q)
        engine.execute(q)
        snap = engine.metrics_snapshot()
        assert snap["artifact_cache_entries"] == 1
        assert snap["artifact_cache_hits"] == 1
        assert snap["artifact_cache_bytes"] > 0
        assert snap["worker_pool"]["workers"] == 2


class TestSortedRunArtifacts:
    """Warm sort-based plans skip the external sort entirely."""

    def _engine(self, **kw):
        kw.setdefault("memory_bytes", 10_000_000)
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3,
            cache_capacity=0, **kw,
        )
        a = uniform_rects(300, UNIT, 0.02, seed=1)
        b = uniform_rects(120, UNIT, 0.03, seed=2, id_base=100_000)
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        engine.prepare()
        return engine

    def test_warm_sssj_charges_zero_sort_and_zero_io(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="sssj")
        cold = engine.execute(q).result
        obs = engine.env.observer_for(MACHINE_3)
        before = (engine.env.bytes_read, engine.env.bytes_written,
                  obs.cpu_ops.get("sort", 0), obs.io_seconds)
        warm = engine.execute(q).result
        assert warm.detail["sorted_run_hits"] == 2
        assert warm.pair_set() == cold.pair_set()
        # Zero sort CPU, zero I/O of any kind: the warm run sweeps
        # straight out of the cached columnar runs.
        assert engine.env.bytes_read == before[0]
        assert engine.env.bytes_written == before[1]
        assert obs.cpu_ops.get("sort", 0) == before[2]
        assert obs.io_seconds == before[3]

    def test_optimizer_prices_sorted_hit_sort_free(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="sssj")
        engine.execute(q)
        plan = engine.optimizer.compile(Query(relations=("a", "b")))
        priced = dict(plan.candidates)
        assert priced["sssj"].io_seconds == 0.0
        assert plan.strategy == "sssj"
        assert any("sort-free" in n for n in plan.notes)

    def test_sorted_runs_share_budget_with_partitions(self):
        engine = self._engine()
        engine.execute(Query(relations=("a", "b"), force="sssj"))
        snap = engine.artifacts.snapshot()
        assert snap["kinds"]["sorted-run"]["entries"] == 2
        assert snap["kinds"]["sorted-run"]["bytes"] > 0
        assert engine.budget.used_by("artifacts") == snap["bytes"]

    def test_reregistration_invalidates_sorted_runs(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="sssj")
        engine.execute(q)
        assert len(engine.artifacts) == 2
        engine.register("a", uniform_rects(300, UNIT, 0.02, seed=1),
                        universe=UNIT)
        # Only b's run survives; a re-run re-sorts side a.
        assert len(engine.artifacts) == 1
        warm = engine.execute(q).result
        assert warm.detail["sorted_run_hits"] == 1

    def test_disabled_cache_skips_sorted_run_path(self):
        engine = self._engine(artifact_cache_bytes=0)
        q = Query(relations=("a", "b"), force="sssj")
        out = engine.execute(q).result
        assert "sorted_run_hits" not in out.detail
        assert len(engine.artifacts) == 0


class TestArtifactPersistence:
    """Artifacts survive engine restarts through the sidecar store."""

    def _rects(self):
        a = uniform_rects(300, UNIT, 0.02, seed=1)
        b = uniform_rects(120, UNIT, 0.03, seed=2, id_base=100_000)
        return a, b

    def _engine(self, artifact_dir, a, b, **kw):
        kw.setdefault("memory_bytes", 10_000_000)
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="serial",
            artifact_dir=str(artifact_dir), **kw,
        )
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        engine.prepare()
        return engine

    def test_restart_restores_partitions_and_sorted_runs(self, tmp_path):
        a, b = self._rects()
        pq = Query(relations=("a", "b"), force="pbsm-grid")
        sq = Query(relations=("a", "b"), force="sssj")
        first = self._engine(tmp_path, a, b)
        p1 = first.execute(pq).result
        s1 = first.execute(sq).result
        assert first.artifact_store.saves == 3  # 1 distribution + 2 runs
        first.close()

        second = self._engine(tmp_path, a, b)
        bytes_before = second.env.bytes_read
        p2 = second.execute(pq).result
        assert p2.detail["artifact_hit"] is True
        assert p2.detail["artifact_restores"] == 1
        assert p2.pair_set() == p1.pair_set()
        # The restore is priced: one sequential read of the tiles.
        assert second.env.bytes_read > bytes_before
        s2 = second.execute(sq).result
        assert s2.detail["artifact_restores"] == 2
        assert s2.pair_set() == s1.pair_set()
        snap = second.metrics_snapshot()
        assert snap["artifact_disk_restores"] == 3
        assert snap["artifact_restores"] == 3  # EngineMetrics counter
        assert snap["artifact_disk_restore_bytes"] > 0
        second.close()

    def test_restart_with_changed_data_stays_cold(self, tmp_path):
        a, b = self._rects()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        first = self._engine(tmp_path, a, b)
        first.execute(q)
        first.close()
        # Same names, different content: fingerprints differ, so the
        # persisted artifacts must not match.
        a2 = uniform_rects(300, UNIT, 0.02, seed=77)
        second = self._engine(tmp_path, a2, b)
        out = second.execute(q).result
        assert out.detail["artifact_hit"] is False
        assert second.metrics_snapshot()["artifact_disk_restores"] == 0
        second.close()

    def test_corrupt_artifact_degrades_to_cold_run(self, tmp_path):
        import json
        import os

        a, b = self._rects()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        first = self._engine(tmp_path, a, b)
        reference = first.execute(q).result
        first.close()
        # Flip bytes in every payload file.
        for name in os.listdir(tmp_path):
            if name.endswith(".art"):
                path = tmp_path / name
                blob = bytearray(path.read_bytes())
                blob[-1] ^= 0xFF
                path.write_bytes(bytes(blob))
        second = self._engine(tmp_path, a, b)
        out = second.execute(q).result
        assert out.detail["artifact_hit"] is False
        assert out.pair_set() == reference.pair_set()
        assert second.artifact_store.corrupt_drops == 1
        # Self-healing: the cold run re-persisted a fresh artifact
        # under the same token, and it now verifies.
        assert second.artifact_store.saves == 1
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["artifacts"]) == 1
        third = self._engine(tmp_path, a, b)
        healed = third.execute(q).result
        assert healed.detail["artifact_hit"] is True
        assert healed.pair_set() == reference.pair_set()
        third.close()

    def test_store_roundtrip_is_exact(self, tmp_path):
        from repro.engine.artifacts import ArtifactStore
        from repro.engine.cache import PARTITION_KIND

        rects_a = uniform_rects(100, UNIT, 0.03, seed=5)
        rects_b = uniform_rects(60, UNIT, 0.04, seed=6, id_base=10_000)
        tasks = [
            (0, ColumnarTile.from_rects(rects_a),
             ColumnarTile.from_rects(rects_b)),
            (3, ColumnarTile.from_rects(rects_b), None),
        ]
        store = ArtifactStore(str(tmp_path))
        assert store.save("tok", PARTITION_KIND, tasks, ["a", "b"])
        fresh = ArtifactStore(str(tmp_path))  # re-read the manifest
        kind, value, logical = fresh.load("tok")
        assert kind == PARTITION_KIND
        assert logical == 220 * 20  # 100 + 60 + 60 rects x RECT_BYTES
        assert [(p, x.decode(), None if y is None else y.decode())
                for p, x, y in value] == [
            (0, rects_a, rects_b), (3, rects_b, None),
        ]


class TestTileBatching:
    """Small tiles coalesce into multi-tile pool tasks."""

    def _skewed(self):
        import random

        rng = random.Random(9)
        rects = []
        rid = 0
        # One dense corner cluster (a huge tile) ...
        for _ in range(1200):
            x = rng.uniform(0.0, 0.05)
            y = rng.uniform(0.0, 0.05)
            rects.append(Rect(x, x + 0.01, y, y + 0.01, rid))
            rid += 1
        # ... plus a thin uniform spread (many tiny tiles).
        for _ in range(1200):
            x = rng.uniform(0.0, 0.99)
            y = rng.uniform(0.0, 0.99)
            rects.append(Rect(x, x + 0.004, y, y + 0.004, rid))
            rid += 1
        other = [
            Rect(r.xlo, r.xhi, r.ylo, r.yhi, 1_000_000 + r.rid)
            for r in rects[::2]
        ]
        return rects, other

    def _engine(self, a, b, pool_kind, tile_batch_bytes, workers=3):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=workers,
            cache_capacity=0, memory_bytes=10_000_000,
            pool_kind=pool_kind, tile_batch_bytes=tile_batch_bytes,
        )
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        return engine

    def test_batched_matches_serial_across_pool_kinds(self):
        a, b = self._skewed()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        serial = self._engine(a, b, "serial", 0)
        ref = serial.execute(q).result
        for kind in ("thread", "process"):
            engine = self._engine(a, b, kind, 20480)
            out = engine.execute(q).result
            # Identical pair sets and bit-identical op accounting,
            # whether tiles shipped solo, batched or inline.
            assert out.pair_set() == ref.pair_set()
            assert (out.detail["sweep_ops_total"]
                    == ref.detail["sweep_ops_total"])
            assert engine.env.cpu_ops == serial.env.cpu_ops
            assert out.detail["tile_batches"] > 0
            assert out.detail["batched_tiles"] > 1
            engine.close()
        serial.close()

    def test_batch_is_one_pool_task(self):
        a, b = self._skewed()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine = self._engine(a, b, "thread", 20480)
        out = engine.execute(q).result
        pool = engine.worker_pool.snapshot()
        # Tiles outnumber dispatched tasks: batches amortize round-trips.
        assert pool["tiles_dispatched"] > pool["tasks_dispatched"]
        assert (out.detail["active_partitions"]
                >= out.detail["tasks_shipped"])
        engine.close()

    def test_batching_disabled_restores_inline_cutoff(self):
        a, b = self._skewed()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine = self._engine(a, b, "process", 0)
        out = engine.execute(q).result
        assert out.detail["tile_batches"] == 0
        assert out.detail["batched_tiles"] == 0
        # Small tiles stayed on the coordinator (the PR-3 cutoff).
        assert out.detail["tasks_shipped"] == 0
        engine.close()

    def test_batching_parallelizes_skewed_grids(self):
        # The point of batching: small tiles reach the worker pool
        # instead of sweeping serially on the coordinator, so the
        # simulated parallel savings strictly improve.
        a, b = self._skewed()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        per_tile = self._engine(a, b, "process", 0)
        batched = self._engine(a, b, "process", 20480)
        saved_per_tile = per_tile.execute(q).result.detail[
            "parallel_cpu_seconds_saved"]
        saved_batched = batched.execute(q).result.detail[
            "parallel_cpu_seconds_saved"]
        assert saved_batched > saved_per_tile
        per_tile.close()
        batched.close()


class TestCostAwareDispatch:
    """Repeat plans measured cheaper than a round-trip sweep inline."""

    def _engine(self, **kw):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=3,
            cache_capacity=0, pool_kind="thread", min_ship_rects=0,
            **kw,
        )
        a = uniform_rects(400, UNIT, 0.02, seed=31)
        b = uniform_rects(200, UNIT, 0.03, seed=32, id_base=100_000)
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        return engine

    def test_repeat_of_cheap_plan_inlines(self):
        engine = self._engine()
        q = Query(relations=("a", "b"), force="pbsm-grid")
        first = engine.execute(q).result
        assert first.detail["tasks_shipped"] > 0
        assert first.detail["inlined_by_cost"] is False
        second = engine.execute(q).result
        assert second.detail["inlined_by_cost"] is True
        assert second.detail["tasks_shipped"] == 0
        # Routing is a wall-clock policy only: answers and simulated
        # accounting are identical wherever the sweeps ran.
        assert second.pair_set() == first.pair_set()
        assert (second.detail["sweep_ops_total"]
                == first.detail["sweep_ops_total"])
        engine.close()

    def test_memo_disabled_keeps_shipping(self):
        engine = self._engine(inline_plan_ops=0)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(q)
        second = engine.execute(q).result
        assert second.detail["inlined_by_cost"] is False
        assert second.detail["tasks_shipped"] > 0
        engine.close()

    def test_plan_above_threshold_keeps_shipping(self):
        engine = self._engine(inline_plan_ops=1)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        engine.execute(q)
        second = engine.execute(q).result
        assert second.detail["inlined_by_cost"] is False
        assert second.detail["tasks_shipped"] > 0
        engine.close()

    def test_new_window_inherits_full_distribution_bound(self):
        # A windowed plan with no measurement of its own inherits the
        # worst sweep observed over the same full distribution, so its
        # *first* execution already routes inline on a cheap dataset.
        engine = self._engine()
        engine.execute(Query(relations=("a", "b"), force="pbsm-grid"))
        win = Rect(0.1, 0.6, 0.1, 0.6, 0)
        out = engine.execute(Query(relations=("a", "b"), window=win,
                                   force="pbsm-grid")).result
        assert out.detail["inlined_by_cost"] is True
        assert out.detail["tasks_shipped"] == 0
        serial = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=1,
            cache_capacity=0, pool_kind="serial",
        )
        serial.register("a", uniform_rects(400, UNIT, 0.02, seed=31),
                        universe=UNIT)
        serial.register("b", uniform_rects(200, UNIT, 0.03, seed=32,
                                           id_base=100_000),
                        universe=UNIT)
        ref = serial.execute(Query(relations=("a", "b"), window=win,
                                   force="pbsm-grid")).result
        assert out.pair_set() == ref.pair_set()
        serial.close()
        engine.close()


class TestLatencyMetrics:
    def test_latency_recorded_for_executions_and_hits(self):
        engine = make_engine(cache_capacity=16)
        q = Query(relations=("a", "b"))
        engine.execute(q)
        engine.execute(q)  # cache hit
        snap = engine.metrics_snapshot()
        assert snap["latency_count"] == 2
        assert snap["latency_total_seconds"] > 0
        assert (snap["latency_max_seconds"]
                >= snap["latency_p95_seconds"]
                >= snap["latency_p50_seconds"] >= 0.0)

    def test_reservoir_stays_bounded(self):
        from repro.engine.metrics import LATENCY_RESERVOIR, EngineMetrics

        m = EngineMetrics()
        for i in range(3 * LATENCY_RESERVOIR):
            m.record_latency(float(i))
        assert m.latency_count == 3 * LATENCY_RESERVOIR
        assert len(m._latency_reservoir) == LATENCY_RESERVOIR
        assert m.latency_max_seconds == float(3 * LATENCY_RESERVOIR - 1)
        assert m.latency_percentile(0.5) > 0.0

    def test_workload_report_includes_latency_and_pool(self):
        engine = make_engine(workers=2, cache_capacity=16)
        engine.register("roads", engine._test_rects[0], universe=UNIT)
        engine.register("hydro", engine._test_rects[1], universe=UNIT)
        report = run_workload(engine, make_workload(UNIT, 8, seed=5))
        assert report["latency_p95_seconds"] >= report["latency_p50_seconds"]
        assert report["pool"]["workers"] == 2
        assert "hits" in report["artifacts"]
