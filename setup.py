"""Shim for environments whose setuptools cannot build PEP 517 wheels
(no `wheel` package offline); `pip install -e . --no-use-pep517` and
plain `python setup.py develop` both work through this file.  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
