"""Table 2 — dataset statistics and join output sizes.

Paper: object counts, data MB, R-tree MB per relation, and the number
of output pairs for roads x hydro on each of the six TIGER datasets.
We regenerate the same table at the active scale and compare the two
scale-free quantities the generator is supposed to preserve: the
R-tree-to-data size overhead (paper: index ~5-13% above the data) and
the output-to-roads selectivity (paper: 0.32-0.72).
"""

import pytest

from repro.data.datasets import DATASET_SPECS
from repro.experiments.report import format_table
from repro.geom.rect import RECT_BYTES

from common import BENCH_DATASETS, bench_scale, emit, get_run, get_setup


def _rows():
    rows = []
    for name in BENCH_DATASETS:
        setup = get_setup(name)
        spec = DATASET_SPECS[name]
        run = get_run(name, "SSSJ")
        n_out = run["result"].n_pairs
        roads, hydro = setup.roads_tree, setup.hydro_tree
        paper_sel = spec.paper_output / spec.paper_roads
        sel = n_out / len(setup.dataset.roads)
        index_overhead = (roads.index_bytes + hydro.index_bytes) / (
            (roads.num_objects + hydro.num_objects) * RECT_BYTES
        )
        rows.append(
            {
                "dataset": name,
                "roads": len(setup.dataset.roads),
                "hydro": len(setup.dataset.hydro),
                "road_kb": setup.dataset.road_bytes / 1024,
                "hydro_kb": setup.dataset.hydro_bytes / 1024,
                "rtree_kb": (roads.index_bytes + hydro.index_bytes) / 1024,
                "output": n_out,
                "sel": sel,
                "paper_sel": paper_sel,
                "index_overhead": index_overhead,
            }
        )
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Roads", "Hydro", "Data KB", "R-tree KB", "Output",
         "Out/Roads", "paper", "Index/Data"],
        [
            [
                r["dataset"], r["roads"], r["hydro"],
                f"{r['road_kb'] + r['hydro_kb']:.0f}",
                f"{r['rtree_kb']:.0f}",
                r["output"],
                f"{r['sel']:.2f}", f"{r['paper_sel']:.2f}",
                f"{r['index_overhead']:.2f}",
            ]
            for r in rows
        ],
        title=f"Table 2 (scale {bench_scale().name}): dataset statistics",
    )
    emit("table2_datasets", table)

    for r in rows:
        # Selectivity stays in the paper's band and within ~2.5x of the
        # per-dataset paper value.
        assert 0.1 <= r["sel"] <= 1.3, r
        assert r["sel"] / r["paper_sel"] <= 2.5, r
        assert r["paper_sel"] / r["sel"] <= 2.5, r
        # Index overhead: paper R-tree sizes are 5-13% above the raw
        # data; scaled pages carry relatively more header, allow <= 35%.
        assert 1.0 <= r["index_overhead"] <= 1.35, r
    # Cardinality ordering is preserved.
    sizes = [r["roads"] for r in rows]
    assert sizes == sorted(sizes)
