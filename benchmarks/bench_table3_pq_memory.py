"""Table 3 — internal-memory footprint of the PQ join.

Paper: the priority queues plus sweep structure stay tiny — the queue is
"always less than 1% of the total data set" and the whole footprint fits
trivially in memory even for DISK1-6 (5.19 MB against 696 MB of data).
We report the same two rows (priority queue incl. leaf buffers / sweep
structure) and assert the <1% property plus monotone growth.
"""

import pytest

from repro.experiments.report import format_table
from repro.geom.rect import RECT_BYTES

from common import BENCH_DATASETS, bench_scale, emit, get_run, get_setup

#: Paper Table 3 values in MB (priority queue, sweep structure).
PAPER_TABLE3 = {
    "NJ": (0.32, 0.09),
    "NY": (0.76, 0.10),
    "DISK1": (1.44, 0.12),
    "DISK4-6": (2.72, 0.15),
    "DISK1-3": (3.65, 0.17),
    "DISK1-6": (4.99, 0.20),
}


def _rows():
    rows = []
    for name in BENCH_DATASETS:
        setup = get_setup(name)
        run = get_run(name, "PQ")
        res = run["result"]
        data_bytes = (
            setup.dataset.road_bytes + setup.dataset.hydro_bytes
        )
        rows.append(
            {
                "dataset": name,
                "queue_kb": res.detail["queue_bytes"] / 1024,
                "sweep_kb": res.detail["sweep_bytes"] / 1024,
                "total_kb": res.max_memory_bytes / 1024,
                "data_kb": data_bytes / 1024,
                "queue_frac": res.detail["queue_bytes"] / data_bytes,
            }
        )
    return rows


def test_table3_pq_memory(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "PQueue KB", "Sweep KB", "Total KB", "Data KB",
         "Queue/Data", "paper MB (pq/sweep)"],
        [
            [
                r["dataset"],
                f"{r['queue_kb']:.1f}", f"{r['sweep_kb']:.1f}",
                f"{r['total_kb']:.1f}", f"{r['data_kb']:.0f}",
                f"{r['queue_frac']:.3%}",
                "{:.2f}/{:.2f}".format(*PAPER_TABLE3[r["dataset"]]),
            ]
            for r in rows
        ],
        title=(
            f"Table 3 (scale {bench_scale().name}): "
            "maximal PQ memory usage"
        ),
    )
    emit("table3_pq_memory", table)

    # The queue's share of the data shrinks as datasets grow (it is
    # dominated by the open-leaf buffers, which scale like the
    # sweep-line width, O(sqrt(N))): the paper's "<1% of the data"
    # holds at full size; at 1/s scale the same structure is a
    # sqrt(s)-times larger fraction of the shrunken data.
    fracs = [r["queue_frac"] for r in rows]
    for earlier, later in zip(fracs, fracs[1:]):
        assert later <= earlier * 1.25, rows
    scale = bench_scale().scale
    assert fracs[-1] < 0.01 * (scale ** 0.5), rows
    for r in rows:
        # The queue is at least comparable to the sweep structure.  (In
        # the paper it dominates 3-25x; the ratio is fanout-dependent —
        # the queue's leaf buffers shrink with the scaled fanout of 25
        # vs 400 while the sweep actives do not, see EXPERIMENTS.md.)
        assert r["queue_kb"] > 0.5 * r["sweep_kb"], r
        # Everything fits comfortably in the memory budget (the
        # paper's actual point in Section 6.1).
        assert r["total_kb"] * 1024 <= 1.2 * bench_scale().memory_bytes, r
    # Footprints grow with dataset size, as in the paper.  The queue
    # grows strictly; the sweep structure tracks the *density* of the
    # region as well as the size, so totals are allowed a small wobble
    # (DISK1-3's east-coast region is denser than DISK1-6's average).
    queues = [r["queue_kb"] for r in rows]
    assert queues == sorted(queues)
    totals = [r["total_kb"] for r in rows]
    for earlier, later in zip(totals, totals[1:]):
        assert later >= 0.8 * earlier, totals
    assert totals[-1] > 3 * totals[0]
