"""Figure 2 — estimated vs observed cost of the indexed joins (PQ, ST).

Paper panels (a)-(c): *estimated* time = CPU + requests x average read.
Under this naive model there is "no clear winner": PQ has a slight edge
on Machine 1, ST looks at most comparable elsewhere.

Paper panels (d)-(f): *observed* time.  The bulk-loaded layout makes
much of ST's I/O sequential, so ST beats PQ decisively on the larger
datasets, most dramatically on Machine 3 — while PQ's observed time
stays close to its estimate (its accesses really are random).
"""

import pytest

from repro.experiments.report import fmt_seconds, format_table
from repro.sim.machines import ALL_MACHINES

from common import BENCH_DATASETS, bench_scale, emit, get_run


def _rows():
    rows = []
    for name in BENCH_DATASETS:
        pq = get_run(name, "PQ")
        st = get_run(name, "ST")
        for mi, spec in enumerate(ALL_MACHINES):
            pqm = pq["machines"][mi]
            stm = st["machines"][mi]
            rows.append(
                {
                    "dataset": name,
                    "machine": f"M{mi + 1}",
                    "pq_est": pqm["estimated_seconds"],
                    "st_est": stm["estimated_seconds"],
                    "pq_obs": pqm["observed_seconds"],
                    "st_obs": stm["observed_seconds"],
                    "pq_cpu": pqm["cpu_seconds"],
                    "st_cpu": stm["cpu_seconds"],
                }
            )
    return rows


def test_fig2_estimated_vs_observed(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Machine", "PQ est", "ST est", "PQ obs", "ST obs",
         "ST obs/est", "PQ obs/est"],
        [
            [
                r["dataset"], r["machine"],
                fmt_seconds(r["pq_est"]), fmt_seconds(r["st_est"]),
                fmt_seconds(r["pq_obs"]), fmt_seconds(r["st_obs"]),
                f"{r['st_obs'] / r['st_est']:.2f}",
                f"{r['pq_obs'] / r['pq_est']:.2f}",
            ]
            for r in rows
        ],
        title=(
            f"Figure 2 (scale {bench_scale().name}): estimated (a-c) vs "
            "observed (d-f) indexed-join costs [simulated seconds]"
        ),
    )
    emit("fig2_indexed_joins", table)

    big = [r for r in rows if r["dataset"] in
           ("DISK1", "DISK4-6", "DISK1-3", "DISK1-6")]
    for r in big:
        # PQ's accesses are genuinely random: observed ~ estimated.
        assert 0.7 <= r["pq_obs"] / r["pq_est"] <= 1.1, r
        # ST rides the bulk-loaded layout: observed well below estimate.
        assert r["st_obs"] / r["st_est"] < 0.75, r
        # Observed: ST beats PQ on the larger sets (paper (d)-(f)).
        assert r["st_obs"] < r["pq_obs"], r
    # Estimated, Machine 1: PQ has at most a slight disadvantage --
    # the paper's "no clear winner / slight advantage for PQ".
    for r in big:
        if r["machine"] == "M1":
            assert r["pq_est"] <= r["st_est"] * 1.1, r
    # The ST-over-PQ factor is largest on Machine 3 (fast disk, big
    # track buffer), the paper's headline observation in (f).
    m3 = [r for r in big if r["machine"] == "M3"]
    for r in m3:
        assert r["pq_obs"] / r["st_obs"] > 1.5, r
