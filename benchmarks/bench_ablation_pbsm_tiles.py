"""Ablation — PBSM tile count (Section 3.2's implementation note).

Patel & DeWitt suggested 32x32 tiles; the paper "observed several
partitions exceeding the internal memory size ... We were able to
alleviate this problem by increasing the number of tiles from 32x32 to
128x128".  We walk the whole trade-off curve: coarse tiling leaves
clustered mass in few tiles (skewed partitions, the paper's pathology);
finer tiling balances the hash, until tiles shrink below the object
size and replication blows the partitions back up.  Tile counts scale
with sqrt(N) — the paper's 32 -> 128 fix at full TIGER size corresponds
to 8 -> 32 at 1/256 scale.
"""

import pytest

from repro.core.pbsm import PBSMConfig, pbsm_join
from repro.experiments.report import format_table

from common import bench_scale, emit, get_setup

TILE_COUNTS = (8, 32, 128)
DATASET = "DISK4-6"  # the West: strongly clustered around few cities


def _rows():
    setup = get_setup(DATASET)
    rows = []
    for tiles in TILE_COUNTS:
        setup.env.reset_counters()
        res = pbsm_join(
            setup.roads_stream, setup.hydro_stream, setup.disk,
            universe=setup.dataset.universe,
            config=PBSMConfig(tiles_per_side=tiles),
        )
        p = res.detail["partitions"]
        copies = res.detail["replicated_a"] + res.detail["replicated_b"]
        avg_kb = copies * 20 / 1024 / p
        max_kb = res.detail["max_partition_bytes"] / 1024
        rows.append(
            {
                "tiles": tiles,
                "partitions": p,
                "max_partition_kb": max_kb,
                "skew": max_kb / avg_kb,
                "overfull": res.detail["overfull_partitions"],
                "replication": copies
                / (len(setup.dataset.roads) + len(setup.dataset.hydro)),
                "pairs": res.n_pairs,
            }
        )
    return rows


def test_pbsm_tile_ablation(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    memory_kb = bench_scale().memory_bytes / 1024
    table = format_table(
        ["Tiles/side", "Partitions", "Max partition KB", "Skew",
         f"Overfull (> {memory_kb:.0f} KB)", "Replication", "Pairs"],
        [
            [r["tiles"], r["partitions"], f"{r['max_partition_kb']:.1f}",
             f"{r['skew']:.2f}", r["overfull"],
             f"{r['replication']:.3f}", r["pairs"]]
            for r in rows
        ],
        title=(
            f"Ablation (scale {bench_scale().name}): PBSM tile count on "
            f"{DATASET} (the paper's 32x32 -> 128x128 fix, sqrt-scaled "
            "to 8 -> 32)"
        ),
    )
    emit("ablation_pbsm_tiles", table)

    coarse, mid, fine = rows
    # All tilings compute the same join.
    assert len({r["pairs"] for r in rows}) == 1
    # The paper's fix: refining the coarse tiling shrinks the largest
    # partition and the partition skew.
    assert mid["max_partition_kb"] < coarse["max_partition_kb"]
    assert mid["skew"] < coarse["skew"]
    # Replication grows monotonically with tile count, and past the
    # object size it wipes out the balance gain — the reason tile
    # counts cannot simply be cranked up (Patel & DeWitt's trade-off).
    reps = [r["replication"] for r in rows]
    assert reps == sorted(reps)
    assert fine["replication"] > 1.3
    assert coarse["replication"] < 1.1
