"""Shared infrastructure for the benchmark suite.

Experiments are expensive relative to unit tests, so prepared setups
and algorithm runs are memoized per (dataset, scale) for the lifetime of
the benchmark session.  Every bench prints its paper-style table to
stdout (run pytest with ``-s`` to watch) and appends it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote the
numbers.

Set ``REPRO_BENCH_SCALE=quick`` to run at 1/1024 scale (fast smoke
runs); the default is the 1/256 scale all recorded results use.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Tuple

from repro.experiments.runner import (
    ExperimentSetup,
    prepare_experiment,
    run_algorithm,
)
from repro.sim.scale import DEFAULT_SCALE, QUICK_SCALE, ScaleConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Datasets every table/figure bench iterates, in paper order.
BENCH_DATASETS = ("NJ", "NY", "DISK1", "DISK4-6", "DISK1-3", "DISK1-6")


def bench_scale() -> ScaleConfig:
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "quick":
        return QUICK_SCALE
    return DEFAULT_SCALE


_SETUPS: Dict[Tuple[str, str], ExperimentSetup] = {}
_RUNS: Dict[Tuple[str, str, str], dict] = {}


def get_setup(dataset: str) -> ExperimentSetup:
    scale = bench_scale()
    key = (dataset, scale.name)
    if key not in _SETUPS:
        _SETUPS[key] = prepare_experiment(dataset, scale=scale)
    return _SETUPS[key]


def get_run(dataset: str, algorithm: str) -> dict:
    """Memoized algorithm run (fresh counters inside run_algorithm)."""
    scale = bench_scale()
    key = (dataset, scale.name, algorithm)
    if key not in _RUNS:
        _RUNS[key] = run_algorithm(algorithm, get_setup(dataset))
    return _RUNS[key]


def machine_snapshot(run: dict, machine_index: int) -> dict:
    return run["machines"][machine_index]


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def emit_json(filename: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable bench result at the repo root.

    CI diffs these files mechanically (see
    ``benchmarks/check_engine_regression.py``), so keys are sorted and
    the layout is stable.
    """
    path = RESULTS_DIR.parent.parent / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {path}")
    return path
