#!/usr/bin/env python
"""Validate a Prometheus text-exposition file (CI gate).

Reuses the same structural validator the test suite runs
(:func:`repro.engine.obs.validate_prometheus`), so "valid" means one
thing across the repo.  Usage::

    python benchmarks/check_prometheus.py metrics.prom \
        --require repro_engine_queries_served

``-`` reads from stdin; ``--require`` asserts a metric name appears at
least once (repeatable).  Exit status 0 on success, 1 with the errors
printed otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.obs import validate_prometheus  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="exposition file ('-': stdin)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless this metric name has at least one sample",
    )
    args = parser.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        text = pathlib.Path(args.path).read_text(encoding="utf-8")

    errors = validate_prometheus(text)
    for name in args.require:
        if not re.search(
            rf"^{re.escape(name)}(\{{| )", text, flags=re.MULTILINE
        ):
            errors.append(f"required metric {name!r} has no samples")
    if errors:
        for err in errors:
            print(f"check_prometheus: {err}", file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines()
        if line and not line.startswith("#")
    )
    print(f"check_prometheus: ok ({samples} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
