#!/usr/bin/env python
"""Validate trace JSON produced by serve-bench ``--trace`` (CI gate).

Accepts either a serve-bench ``--json`` report (validates the
``trace`` span tree and every ``slow_queries[*].trace``) or a bare
span dict, and checks them against the schema the engine promises
(:func:`repro.engine.obs.validate_trace`).  Usage::

    python benchmarks/check_trace_schema.py /tmp/serve-trace.json

``-`` reads from stdin.  Exit status 0 on success, 1 with the errors
printed otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.obs import validate_trace  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path", help="serve-bench report or span JSON ('-': stdin)",
    )
    args = parser.parse_args()

    if args.path == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.path, "r", encoding="utf-8") as fh:
            data = json.load(fh)

    traces = []
    if isinstance(data, dict) and "name" in data and "children" in data:
        traces.append(("$", data))
    else:
        if not isinstance(data, dict) or "trace" not in data:
            print(
                "check_trace_schema: input has neither 'trace' nor a "
                "span shape (was serve-bench run with --trace?)",
                file=sys.stderr,
            )
            return 1
        traces.append(("trace", data["trace"]))
        for i, entry in enumerate(data.get("slow_queries", [])):
            if entry.get("trace") is not None:
                traces.append((f"slow_queries[{i}].trace",
                               entry["trace"]))

    errors = []
    for label, span in traces:
        errors.extend(validate_trace(span, path=label))
    if errors:
        for err in errors:
            print(f"check_trace_schema: {err}", file=sys.stderr)
        return 1
    print(f"check_trace_schema: ok ({len(traces)} trace trees)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
