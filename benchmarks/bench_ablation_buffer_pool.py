"""Ablation — ST's buffer pool size (Section 3.3 / Table 4 regimes).

The paper grants ST a 22 MB pool ("as much advantage as possible") and
observes two regimes: indexes that fit are read at most once; larger
indexes are re-read 1.14-1.63x.  Sweeping the pool size on one dataset
walks the same curve: disk reads fall monotonically as the pool grows
and flatten at the optimal count once the whole index is resident.
"""

import pytest

from repro.core.st_join import STConfig, st_join
from repro.experiments.report import format_table

from common import bench_scale, emit, get_setup

DATASET = "DISK1"


def _rows():
    setup = get_setup(DATASET)
    lower = setup.lower_bound_pages
    fractions = (0.02, 0.05, 0.125, 0.25, 0.5, 1.1)
    rows = []
    for f in fractions:
        pool = max(4, int(lower * f))
        setup.env.reset_counters()
        res = st_join(
            setup.roads_tree, setup.hydro_tree,
            config=STConfig(buffer_pool_pages=pool),
        )
        rows.append(
            {
                "pool_pages": pool,
                "pool_over_index": f,
                "disk_reads": res.detail["disk_reads"],
                "avg": res.detail["disk_reads"] / lower,
                "requests": res.detail["page_requests"],
                "pairs": res.n_pairs,
            }
        )
    return rows, lower


def test_buffer_pool_ablation(benchmark):
    rows, lower = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Pool pages", "Pool/index", "Disk reads", "Reads/page",
         "Requests"],
        [
            [r["pool_pages"], f"{r['pool_over_index']:.3f}",
             r["disk_reads"], f"{r['avg']:.2f}", r["requests"]]
            for r in rows
        ],
        title=(
            f"Ablation (scale {bench_scale().name}): ST disk reads vs "
            f"buffer pool size on {DATASET} (index = {lower} pages)"
        ),
    )
    emit("ablation_buffer_pool", table)

    # Same join everywhere.
    assert len({r["pairs"] for r in rows}) == 1
    # Disk reads decrease monotonically with pool size.
    reads = [r["disk_reads"] for r in rows]
    assert reads == sorted(reads, reverse=True)
    # Tiny pool: heavy re-reading.  Full pool: at most one read/page.
    assert rows[0]["avg"] > 1.3
    assert rows[-1]["avg"] <= 1.0
    # Requests are pool-independent (the traversal doesn't change).
    assert len({r["requests"] for r in rows}) == 1
