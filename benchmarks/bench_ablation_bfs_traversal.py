"""Ablation — breadth-first vs depth-first tree join (Section 3.3).

The paper quotes Huang, Jing & Rundensteiner [16]: the breadth-first
traversal "is reported to take approximately the same amount of CPU
time as ST, while performing an almost optimal number of I/O
operations (if a sufficiently large buffer pool is available)".  We
check all three parts of that sentence against our implementations:
comparable CPU, (near-)optimal disk reads, and the intermediate
join-index memory BFS pays for it.
"""

import pytest

from repro.core.st_bfs import st_bfs_join
from repro.core.st_join import STConfig, st_join
from repro.experiments.report import fmt_seconds, format_table
from repro.sim.machines import MACHINE_3

from common import BENCH_DATASETS, bench_scale, emit, get_setup

DATASETS = ("NY", "DISK1", "DISK1-6")


def _rows():
    rows = []
    for name in DATASETS:
        setup = get_setup(name)
        lower = setup.lower_bound_pages
        setup.env.reset_counters()
        dfs = st_join(setup.roads_tree, setup.hydro_tree)
        dfs_m3 = setup.env.observer_for(MACHINE_3)
        dfs_cpu, dfs_obs = dfs_m3.cpu_seconds, dfs_m3.observed_seconds
        setup.env.reset_counters()
        bfs = st_bfs_join(setup.roads_tree, setup.hydro_tree)
        bfs_m3 = setup.env.observer_for(MACHINE_3)
        assert dfs.n_pairs == bfs.n_pairs
        rows.append(
            {
                "dataset": name,
                "lower": lower,
                "dfs_reads": dfs.detail["disk_reads"],
                "bfs_reads": bfs.detail["disk_reads"],
                "dfs_cpu": dfs_cpu,
                "bfs_cpu": bfs_m3.cpu_seconds,
                "dfs_obs": dfs_obs,
                "bfs_obs": bfs_m3.observed_seconds,
                "join_index_kb": bfs.max_memory_bytes / 1024,
            }
        )
    return rows


def test_bfs_vs_dfs_traversal(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Index pages", "DFS reads", "BFS reads",
         "DFS M3 cpu", "BFS M3 cpu", "DFS M3 obs", "BFS M3 obs",
         "BFS join-index KB"],
        [
            [r["dataset"], r["lower"], r["dfs_reads"], r["bfs_reads"],
             fmt_seconds(r["dfs_cpu"]), fmt_seconds(r["bfs_cpu"]),
             fmt_seconds(r["dfs_obs"]), fmt_seconds(r["bfs_obs"]),
             f"{r['join_index_kb']:.1f}"]
            for r in rows
        ],
        title=(
            f"Ablation (scale {bench_scale().name}): breadth-first vs "
            "depth-first tree join ([16]'s claims)"
        ),
    )
    emit("ablation_bfs_traversal", table)

    for r in rows:
        # "Almost optimal number of I/O operations": within 10% of the
        # two-tree page count (height mismatch costs a few re-reads).
        assert r["bfs_reads"] <= 1.1 * r["lower"], r
        # "Approximately the same amount of CPU time as ST".
        assert 0.5 <= r["bfs_cpu"] / r["dfs_cpu"] <= 1.5, r
        # The price: a materialized join index (nonzero, but small
        # relative to the scaled memory budget on these workloads).
        assert r["join_index_kb"] > 0
    # On the large dataset BFS reads strictly fewer pages than DFS,
    # whose pool overflows (Table 4's regime).
    big = rows[-1]
    assert big["bfs_reads"] < big["dfs_reads"]
