"""Figure 3 — observed running times of all four algorithms.

Paper: "With the exception of one experiment, SSSJ always outperforms
all other algorithms in terms of total running time even though it
performs the largest number of I/Os" — sequential beats random.  On
Machine 1 (slow CPU / fast disk) everything is CPU-bound and the
index-based ST beats the non-index-based PBSM, matching Patel & DeWitt;
on Machines 2/3 the I/O pattern decides and PQ (random reads) trails.
"""

import pytest

from repro.experiments.report import fmt_seconds, format_table
from repro.sim.machines import ALL_MACHINES

from common import BENCH_DATASETS, bench_scale, emit, get_run

ALGOS = ("SSSJ", "PBSM", "PQ", "ST")


def _rows():
    rows = []
    for name in BENCH_DATASETS:
        runs = {a: get_run(name, a) for a in ALGOS}
        for mi in range(len(ALL_MACHINES)):
            row = {"dataset": name, "machine": f"M{mi + 1}"}
            for a in ALGOS:
                snap = runs[a]["machines"][mi]
                row[a] = snap["observed_seconds"]
                row[f"{a}_cpu"] = snap["cpu_seconds"]
                row[f"{a}_io"] = snap["io_seconds"]
            rows.append(row)
    return rows


def test_fig3_all_algorithms(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Machine"] + [f"{a} (cpu+io)" for a in ALGOS]
        + ["winner"],
        [
            [r["dataset"], r["machine"]]
            + [
                f"{fmt_seconds(r[a])} ({fmt_seconds(r[f'{a}_cpu'])}+"
                f"{fmt_seconds(r[f'{a}_io'])})"
                for a in ALGOS
            ]
            + [min(ALGOS, key=lambda a: r[a])]
            for r in rows
        ],
        title=(
            f"Figure 3 (scale {bench_scale().name}): observed join "
            "costs, all machines [simulated seconds]"
        ),
    )
    emit("fig3_all_algorithms", table)

    # SSSJ wins almost everywhere; the paper likewise records exactly
    # one exception.  We allow tiny-dataset ties plus at most one
    # Machine-1/ST exception within 10% (M1 is CPU-bound, and ST is the
    # closest competitor there, as in Figure 3(a)).
    losses = [
        r for r in rows if min(ALGOS, key=lambda a: r[a]) != "SSSJ"
    ]
    big_losses = [r for r in losses if r["dataset"].startswith("DISK")]
    assert len(losses) <= 4, losses
    assert len(big_losses) <= 1, big_losses
    for r in big_losses:
        assert r["machine"] == "M1", r
        assert min(ALGOS, key=lambda a: r[a]) == "ST", r
        assert r["ST"] > 0.85 * r["SSSJ"], r

    big = [r for r in rows if r["dataset"].startswith("DISK")]
    for r in big:
        # SSSJ beats PBSM and PQ on every large dataset, and ST too
        # outside the single allowed exception.
        for a in ("PBSM", "PQ"):
            assert r["SSSJ"] < r[a], (r, a)
        if r not in big_losses:
            assert r["SSSJ"] < r["ST"], r
    m1 = [r for r in big if r["machine"] == "M1"]
    for r in m1:
        # Machine 1 is CPU-bound: internal computation dominates.
        assert r["SSSJ_cpu"] > r["SSSJ_io"], r
        # Patel & DeWitt's observation holds: ST < PBSM on machine 1.
        assert r["ST"] < r["PBSM"], r
    m3 = [r for r in big if r["machine"] == "M3"]
    for r in m3:
        # On the fast machine the CPU no longer dominates SSSJ.
        assert r["SSSJ_cpu"] < r["SSSJ_io"] * 1.5, r
        # PQ, reading every index page randomly, is the slowest there.
        assert r["PQ"] == max(r[a] for a in ALGOS), r
