"""Ablation — index quality and layout (Sections 3.3, 6.2, 7).

Three paper claims about how the *index*, not the algorithm, drives ST:

1. bulk-loaded trees pack to ~90% (75% fill + the 20%-area admission),
   while packing to 100% "might result in too much overlap ... and thus
   decrease the quality of the index" (more overlap => more node-pair
   visits);
2. trees degraded by dynamic updates lose the sequential sibling layout
   and the packing, so ST loses its observed-time advantage ("its
   performance may degrade if the R-tree is updated frequently after
   bulk loading", Section 6.3);
3. PQ is layout-insensitive: "the behavior of PQ should be roughly the
   same" whatever the layout.
"""

import pytest

from repro.core.pq_join import pq_join
from repro.core.st_join import st_join
from repro.data.datasets import build_dataset
from repro.experiments.report import fmt_seconds, format_table
from repro.rtree.bulk_load import (
    DEFAULT_CONFIG,
    FULL_PACK_CONFIG,
    bulk_load,
)
from repro.rtree.insert import RTreeBuilder
from repro.rtree.rstar import RStarTreeBuilder
from repro.sim.env import SimEnv
from repro.sim.machines import ALL_MACHINES, MACHINE_3
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

from common import bench_scale, emit

DATASET = "DISK1"


def _world(builder: str):
    scale = bench_scale()
    ds = build_dataset(DATASET, scale)
    env = SimEnv(scale=scale, machines=ALL_MACHINES)
    disk = Disk(env)
    store = PageStore(disk, scale.index_page_bytes)
    if builder == "packed-75":
        ta = bulk_load(store, ds.roads, config=DEFAULT_CONFIG)
        tb = bulk_load(store, ds.hydro, config=DEFAULT_CONFIG)
    elif builder == "packed-100":
        ta = bulk_load(store, ds.roads, config=FULL_PACK_CONFIG)
        tb = bulk_load(store, ds.hydro, config=FULL_PACK_CONFIG)
    elif builder == "dynamic":
        ba = RTreeBuilder(store, "roads")
        ba.extend(ds.roads)
        ta = ba.finish()
        bb = RTreeBuilder(store, "hydro")
        bb.extend(ds.hydro)
        tb = bb.finish()
    elif builder == "rstar":
        ba = RStarTreeBuilder(store, "roads")
        ba.extend(ds.roads)
        ta = ba.finish()
        bb = RStarTreeBuilder(store, "hydro")
        bb.extend(ds.hydro)
        tb = bb.finish()
    else:
        raise ValueError(builder)
    env.reset_counters()
    return ds, env, disk, ta, tb


def _rows():
    rows = []
    for builder in ("packed-75", "packed-100", "dynamic", "rstar"):
        ds, env, disk, ta, tb = _world(builder)
        env.reset_counters()
        st = st_join(ta, tb)
        st_m3 = env.observer_for(MACHINE_3).observed_seconds
        st_reads = st.detail["disk_reads"]
        env.reset_counters()
        pq = pq_join(ta, tb, disk, universe=ds.universe)
        pq_m3 = env.observer_for(MACHINE_3).observed_seconds
        assert st.n_pairs == pq.n_pairs
        rows.append(
            {
                "builder": builder,
                "pages": ta.page_count + tb.page_count,
                "packing": (ta.packing_ratio() + tb.packing_ratio()) / 2,
                "st_reads": st_reads,
                "st_m3": st_m3,
                "pq_m3": pq_m3,
            }
        )
    return rows


def test_index_quality_ablation(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Builder", "Pages", "Packing", "ST disk reads", "ST M3 s",
         "PQ M3 s"],
        [
            [r["builder"], r["pages"], f"{r['packing']:.2f}",
             r["st_reads"], fmt_seconds(r["st_m3"]),
             fmt_seconds(r["pq_m3"])]
            for r in rows
        ],
        title=(
            f"Ablation (scale {bench_scale().name}): index quality on "
            f"{DATASET} — packed 75%/100% vs Guttman vs R*-tree"
        ),
    )
    emit("ablation_index_quality", table)

    packed75, packed100, dynamic, rstar = rows
    # Packing ratios: paper's heuristic lands around 90%; full packing
    # higher; dynamic insertion well below.
    assert 0.74 <= packed75["packing"] <= 1.0
    assert packed100["packing"] > packed75["packing"]
    assert dynamic["packing"] < packed75["packing"]
    # The dynamic tree is bigger and costs ST more I/O and time.
    assert dynamic["pages"] > packed75["pages"]
    assert dynamic["st_reads"] > packed75["st_reads"]
    assert dynamic["st_m3"] > 1.5 * packed75["st_m3"]
    # PQ is far less layout-sensitive than ST (claim 3): the dynamic
    # tree slows PQ by at most the page-count growth plus a margin,
    # while ST degrades by more than that.
    pq_degrade = dynamic["pq_m3"] / packed75["pq_m3"]
    st_degrade = dynamic["st_m3"] / packed75["st_m3"]
    assert st_degrade > pq_degrade, (st_degrade, pq_degrade)
    # The R*-tree sits between: better-shaped nodes than Guttman (fewer
    # node-pair visits -> fewer reads), still no sequential layout.
    assert rstar["st_reads"] <= dynamic["st_reads"], rows
    assert rstar["st_m3"] >= packed75["st_m3"], rows
