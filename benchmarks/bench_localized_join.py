"""Section 6.3 — localized joins and the cost model's crossover.

The paper's closing argument: index-based joins win when only a small
clustered portion of one input participates ("joining hydrographic
features from the state of Minnesota and road features of the entire
United States"), and a cost model should pick the strategy; for the
paper's disk the index pays off below roughly 60% leaf participation.

This bench sweeps the width of the localized relation from ~3% to 100%
of the big relation's extent, running both the pruned PQ-over-index
path and SSSJ, and locates the empirical crossover in simulated I/O
seconds per machine; it also checks the cost model's predicted
crossover agrees with the measured one within a factor of two, and that
the planner picks the winning side on both ends of the sweep.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.histogram import SpatialHistogram
from repro.core.planner import Relation, unified_spatial_join
from repro.data.tiger import make_hydro, make_roads
from repro.experiments.report import fmt_seconds, format_table
from repro.geom.rect import Rect
from repro.rtree.bulk_load import bulk_load
from repro.sim.env import SimEnv
from repro.sim.machines import ALL_MACHINES, MACHINE_1, MACHINE_3
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from common import bench_scale, emit

#: The "entire United States" relation: roads over a wide strip.
US = Rect(-125.0, -66.0, 36.0, 40.0, 0)
N_ROADS = 40_000
N_HYDRO_PER_DEG = 30


def _run_fraction(width_deg: float):
    """Join localized hydro (a window of `width_deg`) against US roads."""
    scale = bench_scale()
    env = SimEnv(scale=scale, machines=ALL_MACHINES)
    disk = Disk(env)
    store = PageStore(disk, scale.index_page_bytes)
    roads = make_roads(N_ROADS, US, seed=77, layout_seed=77)
    window = Rect(US.xlo, min(US.xhi, US.xlo + width_deg), 36.0, 40.0, 0)
    hydro = make_hydro(
        max(32, int(N_HYDRO_PER_DEG * width_deg)), window,
        seed=78, layout_seed=77, id_base=10_000_000,
    )
    roads_tree = bulk_load(store, roads, name="roads")
    roads_stream = Stream.from_rects(disk, roads, name="roads")
    hydro_stream = Stream.from_rects(disk, hydro, name="hydro")
    rel_a = Relation(
        name="us-roads", stream=roads_stream, tree=roads_tree,
        universe=US,
        histogram=SpatialHistogram.build(roads, US, grid=64),
    )
    rel_b = Relation(name="hydro", stream=hydro_stream, universe=window)

    results = {}
    for strategy in ("pq-mixed-a", "sssj"):
        env.reset_counters()
        res = unified_spatial_join(
            rel_a, rel_b, disk, MACHINE_3, force=strategy,
        )
        results[strategy] = {
            "pairs": res.n_pairs,
            "io": {
                f"M{i + 1}": env.observer_for(spec).io_seconds
                for i, spec in enumerate(ALL_MACHINES)
            },
        }
    leaf_fraction = rel_a.fraction_in(window)
    return leaf_fraction, results, rel_a, rel_b, disk, env


def _rows():
    rows = []
    for width in (2.0, 6.0, 12.0, 24.0, 40.0, 59.0):
        frac, results, rel_a, rel_b, disk, env = _run_fraction(width)
        pq_io = results["pq-mixed-a"]["io"]
        sj_io = results["sssj"]["io"]
        assert results["pq-mixed-a"]["pairs"] == results["sssj"]["pairs"]
        rows.append(
            {
                "width": width,
                "fraction": frac,
                "pq_m1": pq_io["M1"], "sj_m1": sj_io["M1"],
                "pq_m3": pq_io["M3"], "sj_m3": sj_io["M3"],
            }
        )
    return rows


def test_localized_join_crossover(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    scale = bench_scale()
    model_m1 = CostModel(MACHINE_1, scale)
    model_m3 = CostModel(MACHINE_3, scale)
    table = format_table(
        ["Window deg", "Leaf fraction", "PQ(idx) M1 io", "SSSJ M1 io",
         "PQ(idx) M3 io", "SSSJ M3 io", "index wins M1", "index wins M3"],
        [
            [
                f"{r['width']:.0f}", f"{r['fraction']:.2f}",
                fmt_seconds(r["pq_m1"]), fmt_seconds(r["sj_m1"]),
                fmt_seconds(r["pq_m3"]), fmt_seconds(r["sj_m3"]),
                "yes" if r["pq_m1"] < r["sj_m1"] else "no",
                "yes" if r["pq_m3"] < r["sj_m3"] else "no",
            ]
            for r in rows
        ],
        title=(
            f"Section 6.3 (scale {scale.name}): localized join — pruned "
            f"index vs sort path.  Model crossover f*: "
            f"M1={model_m1.crossover_fraction():.2f}, "
            f"M3={model_m3.crossover_fraction():.2f}"
        ),
    )
    emit("localized_join", table)

    # The index path wins at the localized end and loses at the dense
    # end, on every machine — the paper's qualitative claim.
    first, last = rows[0], rows[-1]
    for m in ("m1", "m3"):
        assert first[f"pq_{m}"] < first[f"sj_{m}"], first
        assert last[f"pq_{m}"] > last[f"sj_{m}"], last

    # Empirical crossover brackets the model's prediction within ~2x.
    def crossover(rows, m):
        prev = None
        for r in rows:
            if r[f"pq_{m}"] >= r[f"sj_{m}"]:
                return (prev["fraction"] + r["fraction"]) / 2 if prev \
                    else r["fraction"]
            prev = r
        return 1.0

    for m, model in (("m1", model_m1), ("m3", model_m3)):
        measured = crossover(rows, m)
        predicted = model.crossover_fraction()
        assert predicted / 3 <= measured <= predicted * 3, (
            m, measured, predicted,
        )

    # The planner itself picks the winner at both ends (Machine 3).
    frac, results, rel_a, rel_b, disk, env = _run_fraction(2.0)
    env.reset_counters()
    res = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3)
    assert res.detail["strategy"] != "sssj"
    frac, results, rel_a, rel_b, disk, env = _run_fraction(59.0)
    env.reset_counters()
    res = unified_spatial_join(rel_a, rel_b, disk, MACHINE_3)
    assert res.detail["strategy"] == "sssj"
