"""Section 4 — multi-way intersection joins by cascading PQ.

The paper: "a 3-way intersection join can be performed by feeding the
output of a two-way join directly into another join with a third
(indexed or non-indexed) input."  We join roads x hydro x landuse on a
TIGER-like region with the cascade, verify it against composing the
joins with an intermediate materialization, and show the cascade's
advantage: no sorting or spooling of the intermediate result.
"""

import pytest

from repro.core.multiway import multiway_join
from repro.core.pq_join import pq_join
from repro.data.datasets import DATASET_SPECS, build_dataset
from repro.data.tiger import make_landuse
from repro.experiments.report import format_table
from repro.geom.rect import Rect, intersection
from repro.rtree.bulk_load import bulk_load
from repro.sim.env import SimEnv
from repro.sim.machines import ALL_MACHINES, MACHINE_3
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from common import bench_scale, emit

DATASET = "NY"


def _world():
    scale = bench_scale()
    ds = build_dataset(DATASET, scale)
    landuse = make_landuse(
        max(64, len(ds.hydro) // 2), ds.universe,
        seed=DATASET_SPECS[DATASET].seed + 9000,
        layout_seed=DATASET_SPECS[DATASET].seed, id_base=50_000_000,
    )
    env = SimEnv(scale=scale, machines=ALL_MACHINES)
    disk = Disk(env)
    store = PageStore(disk, scale.index_page_bytes)
    roads_tree = bulk_load(store, ds.roads, name="roads")
    hydro_stream = Stream.from_rects(disk, ds.hydro, name="hydro")
    landuse_tree = bulk_load(store, landuse, name="landuse")
    env.reset_counters()
    return ds, landuse, env, disk, roads_tree, hydro_stream, landuse_tree


def _run():
    ds, landuse, env, disk, roads_tree, hydro_stream, landuse_tree = _world()

    env.reset_counters()
    cascade = multiway_join(
        [roads_tree, hydro_stream, landuse_tree], disk,
        universe=ds.universe, collect_tuples=True,
    )
    cascade_io = env.observer_for(MACHINE_3).io_seconds
    cascade_reads = env.page_reads

    # Composed alternative: materialize roads x hydro intersections as
    # a stream (which the second join must then re-sort), then join.
    env.reset_counters()
    first = pq_join(
        roads_tree, hydro_stream, disk, universe=ds.universe,
        collect_pairs=True,
    )
    roads_by_id = {r.rid: r for r in ds.roads}
    hydro_by_id = {r.rid: r for r in ds.hydro}
    inter_stream = Stream(disk, name="intermediate")
    synth = {}
    for i, (ra_id, rb_id) in enumerate(first.pairs):
        inter = intersection(roads_by_id[ra_id], hydro_by_id[rb_id])
        synth[i] = (ra_id, rb_id)
        inter_stream.append(Rect(inter.xlo, inter.xhi, inter.ylo,
                                 inter.yhi, i))
    inter_stream.close()
    second = pq_join(
        inter_stream, landuse_tree, disk, universe=ds.universe,
        collect_pairs=True,
    )
    composed = {
        synth[sid] + (lid,) for sid, lid in second.pairs
    }
    composed_io = env.observer_for(MACHINE_3).io_seconds
    composed_reads = env.page_reads

    return {
        "tuples": cascade.n_pairs,
        "cascade_set": set(cascade.pairs),
        "composed_set": composed,
        "cascade_io": cascade_io,
        "composed_io": composed_io,
        "cascade_reads": cascade_reads,
        "composed_reads": composed_reads,
    }


def test_multiway_cascade(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["Method", "3-way tuples", "M3 I/O s", "Page reads"],
        [
            ["PQ cascade (paper §4)", out["tuples"],
             f"{out['cascade_io']:.4f}", out["cascade_reads"]],
            ["materialize + rejoin", len(out["composed_set"]),
             f"{out['composed_io']:.4f}", out["composed_reads"]],
        ],
        title=(
            f"Section 4 (scale {bench_scale().name}): 3-way join "
            f"roads x hydro x landuse on {DATASET}"
        ),
    )
    emit("multiway", table)

    # Identical result sets.
    assert out["cascade_set"] == out["composed_set"]
    assert out["tuples"] > 0
    # The cascade does no intermediate spooling: strictly fewer page
    # accesses and no more I/O time.
    assert out["cascade_reads"] < out["composed_reads"]
    assert out["cascade_io"] <= out["composed_io"] * 1.05
