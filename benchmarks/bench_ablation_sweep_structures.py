"""Ablation — Striped-Sweep vs Forward-Sweep (Section 3.1 / [4]).

Arge et al. measured Striped-Sweep "by a factor of 2 to 5 faster than
the other methods for most real-life data sets"; the paper builds SSSJ
and PQ on it while ST and PBSM use Forward-Sweep.  We compare kernel
comparison counts (the machine-independent measure behind the CPU
times) on the TIGER-like datasets.
"""

import pytest

from repro.core.sweep import ForwardSweep, StripedSweep, auto_strips, sweep_join
from repro.data.datasets import build_dataset
from repro.experiments.report import format_table
from repro.sim.env import null_env

from common import bench_scale, emit

DATASETS = ("NY", "DISK1", "DISK1-6")


def _one(name: str):
    ds = build_dataset(name, bench_scale())
    key = lambda r: (r.ylo, r.xlo, r.rid)
    roads = sorted(ds.roads, key=key)
    hydro = sorted(ds.hydro, key=key)
    uni = ds.universe
    widths = [r.xhi - r.xlo for r in roads[:512]]
    nstrips = auto_strips(uni.xhi - uni.xlo, sum(widths) / len(widths))

    env_f = null_env()
    f_stats = sweep_join(iter(roads), iter(hydro), ForwardSweep, env_f)
    env_s = null_env()
    s_stats = sweep_join(
        iter(roads), iter(hydro),
        lambda: StripedSweep(uni.xlo, uni.xhi, nstrips), env_s,
    )
    assert f_stats.pairs == s_stats.pairs
    return {
        "dataset": name,
        "nstrips": nstrips,
        "forward_ops": f_stats.cpu_ops,
        "striped_ops": s_stats.cpu_ops,
        "speedup": f_stats.cpu_ops / s_stats.cpu_ops,
    }


def _rows():
    return [_one(name) for name in DATASETS]


def test_striped_vs_forward_sweep(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Strips", "Forward ops", "Striped ops", "Speedup"],
        [
            [r["dataset"], r["nstrips"], r["forward_ops"],
             r["striped_ops"], f"{r['speedup']:.1f}x"]
            for r in rows
        ],
        title=(
            f"Ablation (scale {bench_scale().name}): Striped-Sweep vs "
            "Forward-Sweep comparison counts ([4]'s 2-5x claim)"
        ),
    )
    emit("ablation_sweep_structures", table)

    for r in rows:
        # [4]: 2-5x on real-life data; clustering at small scale can
        # push past that, so require >= 2x and sanity-cap at 50x.
        assert 2.0 <= r["speedup"] <= 50.0, r
    # The advantage grows with dataset size (denser sweep line).
    assert rows[-1]["speedup"] >= rows[0]["speedup"], rows
