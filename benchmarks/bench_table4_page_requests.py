"""Table 4 — pages requested from disk during the indexed joins.

Paper: PQ hits the lower bound (every index page exactly once) on all
datasets.  ST matches or beats the bound on NJ/NY (indexes fit in the
buffer pool, search-space restriction skips some pages) but re-reads
pages 1.14-1.63x on the DISK* sets, whose indexes exceed the pool.
"""

import pytest

from repro.experiments.report import format_table

from common import BENCH_DATASETS, bench_scale, emit, get_run, get_setup

#: Paper Table 4 average requests per page for ST.
PAPER_ST_AVG = {
    "NJ": 1.00, "NY": 1.00, "DISK1": 1.43,
    "DISK4-6": 1.63, "DISK1-3": 1.14, "DISK1-6": 1.16,
}


def _rows():
    rows = []
    for name in BENCH_DATASETS:
        setup = get_setup(name)
        lower = setup.lower_bound_pages
        pq = get_run(name, "PQ")
        st = get_run(name, "ST")
        st_reads = st["result"].detail["disk_reads"]
        pool_pages = st["result"].detail["pool_pages"]
        rows.append(
            {
                "dataset": name,
                "lower": lower,
                "pq": pq["page_reads"],
                "pq_avg": pq["page_reads"] / lower,
                "st": st_reads,
                "st_avg": st_reads / lower,
                "paper_st_avg": PAPER_ST_AVG[name],
                "fits_pool": lower <= pool_pages,
            }
        )
    return rows


def test_table4_page_requests(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Lower bound", "PQ", "PQ avg", "ST", "ST avg",
         "paper ST avg", "fits pool"],
        [
            [
                r["dataset"], r["lower"], r["pq"],
                f"{r['pq_avg']:.2f}", r["st"], f"{r['st_avg']:.2f}",
                f"{r['paper_st_avg']:.2f}",
                "yes" if r["fits_pool"] else "no",
            ]
            for r in rows
        ],
        title=(
            f"Table 4 (scale {bench_scale().name}): pages requested "
            "during joining"
        ),
    )
    emit("table4_page_requests", table)

    for r in rows:
        # PQ is exactly optimal, always.
        assert r["pq"] == r["lower"], r
        if r["fits_pool"]:
            # Small sets: every page read at most once; restriction can
            # push ST below the bound, as for the paper's NJ.
            assert r["st"] <= r["lower"], r
        else:
            # Large sets: re-reads in the paper's 1.1-1.7x range.
            assert 1.0 < r["st_avg"] <= 1.8, r
