"""Engine serving throughput: cold vs. warm caches, 1 vs. K workers,
roomy vs. tight memory budgets, restart warm-up and skewed batching.

The serving-layer claim, measured: the same mixed workload (dense
overlays, localized window joins, ~40% verbatim repeats) is replayed
against fresh engines in seven configurations —

* **cold, 1 worker** with the result cache disabled: every query
  re-plans and re-executes, the one-shot baseline;
* **cold, K workers**, result cache still disabled: partitioned
  execution on the persistent worker pool shortens the heavy overlays,
  and repeats of partitioned plans hit the artifact cache (the
  distribute phase runs once per distinct plan, not per query);
* **warm, 1 worker**: the LRU result cache serves the repeats;
* **tight budget, K workers**: the memory budget is squeezed below the
  tile footprint, so partitioned tiles spill to disk — correctness is
  unchanged (identical pair totals) and the spill traffic shows up in
  the metrics;
* **restart warm, K workers**: a first engine runs the workload with an
  ``--artifact-dir`` sidecar and shuts down; a *fresh* engine pointed
  at the same directory serves the same workload, restoring persisted
  distributions and sorted runs instead of recomputing them — the
  cold-restart warm-up the artifact layer exists to kill;
* **skewed, per-tile vs. batched**: a deliberately skewed grid (one
  dense cluster plus a thin spread — many tiny tiles, one huge one)
  served with tile batching disabled (every small tile sweeps serially
  on the coordinator, the PR-3 cutoff) and enabled (small tiles ship
  to the pool in multi-tile batches);
* **sharded, K workers**: the same workload scattered over a 2-shard
  :class:`~repro.engine.shard.ShardedEngine` — both shards on one
  shared worker pool — gathered with boundary dedup; the pair totals
  must match the single-engine rows exactly (the differential
  contract), with window queries pruning non-overlapping shards;
* **concurrent serving**: the sharded deployment behind the admission
  front-end (:class:`~repro.engine.serve.ServingFrontend`) — one
  closed-loop client as the single-caller baseline, eight closed-loop
  clients for aggregate throughput at equal pool size, and an
  open-loop saturation burst into a tiny queue that must load-shed
  with bounded p95 instead of queueing without bound;
* **kernel/shipping ablations**: the cold partitioned config on the
  pure-python kernel with pickled shipping (the pre-rework mode), and
  the skewed batched config with only the kernel or only the shm
  transport reverted — wall-clock attribution for the vectorized
  kernel and the zero-copy shared-memory tile shipping, which by
  contract change no answers and no simulated numbers.

The non-tight configurations run under a budget large enough to hold
the partitioned tiles in memory, isolating the parallelism/caching
comparison from spill effects.  Throughput is reported against the
simulated clock (machine-trio faithful) with real wall seconds and
tail latency (p95 over the metrics reservoir) alongside.

Besides the txt table the bench emits ``BENCH_engine_throughput.json``
at the repo root — configuration, per-run wall/simulated clocks,
queries/sec, spill, pool, artifact-cache and restore stats — and
compares the multi-worker configuration against the recorded
pre-parallel-rework baseline (commit 3d530e0): the rework's acceptance
bar is >= 2x queries/sec there, asserted at the default scale where
the simulated numbers are deterministic.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile

from repro.data.datasets import build_dataset
from repro.engine.engine import SpatialQueryEngine
from repro.engine.workload import (
    engine_for_dataset,
    make_workload,
    run_concurrent_workload,
    run_workload,
    sharded_engine_for_dataset,
)
from repro.experiments.report import fmt_seconds, format_table
from repro.geom.rect import RECT_BYTES, Rect
from repro.sim.machines import MACHINE_3

from common import bench_scale, emit, emit_json

DATASET = "NJ"
N_QUERIES = 30
WORKERS = 4
SHARDS = 2
REPLICAS = 2

#: Skewed synthetic grid: one dense corner cluster (a huge tile) plus
#: a thin uniform spread (many tiny tiles).  The spread dominates the
#: sweep work, so keeping it on the coordinator (the per-tile inline
#: cutoff) serializes most of the query — exactly the regime batching
#: fixes.
SKEW_CLUSTER = 500
SKEW_SPREAD = 8000

#: Pre-rework numbers for the same bench on this machine (commit
#: 3d530e0: per-query ThreadPoolExecutor, per-pair callback sweeps, no
#: artifact reuse), recorded at the default 1/256 scale.  The simulated
#: figures are deterministic, so the >= 2x acceptance bar is asserted
#: against them; wall figures are informational.
PRE_PR_BASELINE_SCALE = "1/256"
PRE_PR_BASELINE = {
    "cold_k": {"queries_per_sec_sim": 341.7, "wall_seconds": 0.0572},
    "cold_1": {"queries_per_sec_sim": 226.7, "wall_seconds": 0.0426},
    "warm_1": {"queries_per_sec_sim": 549.5, "wall_seconds": 0.0160},
    "tight_k": {"queries_per_sec_sim": 143.9, "wall_seconds": 0.0556},
}

#: Wall-clock throughput immediately before the kernel/shm rework
#: (python sweeps, pickled tile shipping), recorded on this machine at
#: the default 1/256 scale.  Simulated numbers are *unchanged* by the
#: rework (the kernels are accounting-identical by contract — the
#: differential suite asserts it), so its acceptance bar is wall
#: clock: >= 2x queries/sec on both the partitioned cold config and
#: the skewed batched grid with the numpy kernel + shm shipping.
PRE_KERNEL_BASELINE_SCALE = "1/256"
PRE_KERNEL_BASELINE = {
    "cold_k": {"queries_per_sec_wall": 204.2},
    "skewed_batched": {"queries_per_sec_wall": 47.2},
}


def _serve(workers: int, cache_capacity: int, memory_bytes: int,
           artifact_dir=None, kernel: str = "auto",
           shm_min_bytes=None) -> dict:
    scale = bench_scale()
    engine = engine_for_dataset(
        DATASET, scale, workers=workers, cache_capacity=cache_capacity,
        memory_bytes=memory_bytes, artifact_dir=artifact_dir,
        kernel=kernel, shm_min_bytes=shm_min_bytes,
    )
    queries = make_workload(
        engine.catalog.get("roads").universe, N_QUERIES, seed=7,
    )
    report = run_workload(engine, queries)
    engine.close()
    return report


def _serve_sharded(shards: int, memory_bytes: int,
                   replicas: int = 1, faults=None) -> dict:
    scale = bench_scale()
    engine = sharded_engine_for_dataset(
        DATASET, scale, shards=shards, workers=WORKERS,
        cache_capacity=0, memory_bytes=memory_bytes,
        replicas=replicas, faults=faults,
    )
    queries = make_workload(
        engine.universe_of("roads"), N_QUERIES, seed=7,
    )
    report = run_workload(engine, queries)
    engine.close()
    return report


def _serve_concurrent(clients: int, memory_bytes: int,
                      open_loop_qps=None, queue_depth=None,
                      deadline_seconds=None, admission_bytes=None,
                      max_concurrency=None) -> dict:
    """The skewed sharded workload through the admission front-end.

    The skewed grid keeps real sweep work in the pool workers, so
    overlapping in-flight queries buys wall clock; the NJ mixed
    workload at bench scale is coordinator-bound (sub-millisecond
    sweeps) and would measure only front-end overhead.
    """
    scale = bench_scale()
    from repro.engine.shard import ShardedEngine
    roads, hydro, unit = _skewed_relations()
    engine = ShardedEngine(
        shards=SHARDS, scale=scale, machine=MACHINE_3, workers=WORKERS,
        cache_capacity=0, memory_bytes=memory_bytes,
    )
    engine.register("roads", roads, universe=unit)
    engine.register("hydro", hydro, universe=unit)
    queries = make_workload(unit, N_QUERIES, seed=7)
    report = run_concurrent_workload(
        engine, queries, clients=clients,
        deadline_seconds=deadline_seconds,
        open_loop_qps=open_loop_qps, queue_depth=queue_depth,
        admission_bytes=admission_bytes,
        max_concurrency=max_concurrency,
    )
    engine.close()
    return report


def _skewed_relations():
    """A deterministic skewed pair: dense cluster + thin spread."""
    rng = random.Random(41)
    unit = Rect(0.0, 1.0, 0.0, 1.0, 0)
    roads = []
    rid = 0
    for _ in range(SKEW_CLUSTER):
        x = rng.uniform(0.0, 0.05)
        y = rng.uniform(0.0, 0.05)
        roads.append(Rect(x, x + 0.008, y, y + 0.008, rid))
        rid += 1
    for _ in range(SKEW_SPREAD):
        x = rng.uniform(0.0, 0.99)
        y = rng.uniform(0.0, 0.99)
        roads.append(Rect(x, x + 0.002, y, y + 0.002, rid))
        rid += 1
    hydro = [
        Rect(r.xlo, r.xhi, r.ylo, r.yhi, 1_000_000 + r.rid)
        for r in roads[::2]
    ]
    return roads, hydro, unit


def _serve_skewed(tile_batch_bytes, memory_bytes: int,
                  kernel: str = "auto", shm_min_bytes=None) -> dict:
    scale = bench_scale()
    roads, hydro, unit = _skewed_relations()
    kwargs = {}
    if tile_batch_bytes is not None:
        kwargs["tile_batch_bytes"] = tile_batch_bytes
    if shm_min_bytes is not None:
        kwargs["shm_min_bytes"] = shm_min_bytes
    engine = SpatialQueryEngine(
        scale=scale, machine=MACHINE_3, workers=WORKERS,
        cache_capacity=0, memory_bytes=memory_bytes, kernel=kernel,
        **kwargs,
    )
    engine.register("roads", roads, universe=unit)
    engine.register("hydro", hydro, universe=unit)
    engine.prepare()
    report = run_workload(engine, make_workload(unit, N_QUERIES, seed=7))
    engine.close()
    return report


def _json_row(rep: dict) -> dict:
    m = rep["metrics"]
    row = {
        "queries": rep["queries"],
        "pairs_returned": rep["pairs_returned"],
        "wall_seconds": rep["wall_seconds"],
        "sim_wall_seconds": rep["sim_wall_seconds"],
        "queries_per_sec_wall": rep["queries_per_sec_wall"],
        "queries_per_sec_sim": rep["queries_per_sec_sim"],
        "cache_hits": m["cache_hits"],
        "artifact_hits": rep["artifacts"]["hits"],
        "artifact_entries": rep["artifacts"]["entries"],
        "artifact_bytes": rep["artifacts"]["bytes"],
        "artifact_disk_restores": rep["artifacts"]["disk_restores"],
        "artifact_disk_restore_bytes":
            rep["artifacts"]["disk_restore_bytes"],
        "artifact_kinds": rep["artifacts"]["kinds"],
        "pages_read": m["pages_read"],
        "spilled_rects": m["spilled_rects"],
        "budget_high_water_bytes": m["budget_high_water_bytes"],
        "latency_p50_seconds": rep["latency_p50_seconds"],
        "latency_p95_seconds": rep["latency_p95_seconds"],
        "pool": rep["pool"],
        "per_strategy": m["per_strategy"],
        "kernel": m.get("kernel", "python"),
        "shm": rep["pool"].get("shm"),
        "replicas": m.get("replicas", 1),
        "failovers": m.get("failovers", 0),
        "retries": m.get("retries", 0),
    }
    if "serve" in rep:
        s = rep["serve"]
        row["clients"] = rep["clients"]
        row["served"] = rep["served"]
        row["open_loop_qps"] = rep["open_loop_qps"]
        row["serve"] = {
            key: s[key] for key in (
                "submitted", "served_ok", "served_degraded",
                "queued_total", "queue_high_water",
                "queue_wait_seconds", "shed", "expired", "rejected",
                "errors", "in_flight_high_water", "aged_promotions",
                "queue_age_max_seconds",
            )
        }
        row["admission_in_use_bytes"] = s["admission"]["in_use_bytes"]
    return row


def test_engine_throughput():
    scale = bench_scale()
    ds = build_dataset(DATASET, scale)
    data_bytes = (len(ds.roads) + len(ds.hydro)) * RECT_BYTES
    # Roomy: tiles, pool and caches all fit — the pre-spill regime.
    roomy = 8 * data_bytes + scale.buffer_pool_bytes
    # Tight: well below the tile footprint, forcing the spill path
    # (but above the admission-control floor).
    tight = max(4096, data_bytes // 4)

    cold_1 = _serve(workers=1, cache_capacity=0, memory_bytes=roomy)
    cold_k = _serve(workers=WORKERS, cache_capacity=0, memory_bytes=roomy)
    warm_1 = _serve(workers=1, cache_capacity=64, memory_bytes=roomy)
    tight_k = _serve(workers=WORKERS, cache_capacity=0, memory_bytes=tight)

    # Kernel/shipping ablation rows: the same cold partitioned config
    # on the pure-python kernel with pickled shipping (the pre-rework
    # execution mode, for wall-clock attribution).
    cold_k_python = _serve(
        workers=WORKERS, cache_capacity=0, memory_bytes=roomy,
        kernel="python", shm_min_bytes=-1,
    )

    # Restart warm-up: populate a sidecar, shut down, serve again from
    # a fresh engine on the same directory.
    artifact_dir = tempfile.mkdtemp(prefix="repro-artifacts-")
    try:
        _serve(workers=WORKERS, cache_capacity=0, memory_bytes=roomy,
               artifact_dir=artifact_dir)
        restart_warm = _serve(
            workers=WORKERS, cache_capacity=0, memory_bytes=roomy,
            artifact_dir=artifact_dir,
        )
    finally:
        shutil.rmtree(artifact_dir, ignore_errors=True)

    # Skewed grid: per-tile (batching off — small tiles sweep serially
    # on the coordinator) vs. batched shipping.
    skew_budget = 8 * (SKEW_CLUSTER + SKEW_SPREAD) * 2 * RECT_BYTES
    skewed_per_tile = _serve_skewed(0, skew_budget)
    skewed_batched = _serve_skewed(None, skew_budget)  # default target
    # Ablations on the headline skewed config: python kernel (shm
    # still on) and pickled shipping (numpy kernel still on).
    skewed_batched_python = _serve_skewed(
        None, skew_budget, kernel="python",
    )
    skewed_batched_pickled = _serve_skewed(
        None, skew_budget, shm_min_bytes=-1,
    )

    # Sharded catalog: scatter/gather over SHARDS engine shards, one
    # shared worker pool, a roomy budget slice per shard.
    sharded_k = _serve_sharded(SHARDS, SHARDS * roomy)
    # Replicated shards: R=2 engines per strip on the same pool.  The
    # healthy row prices the replication overhead (round-robin read
    # scaling, no failures); the failover row injects one replica
    # outage at the start of the workload and must still answer
    # identically, with the degradation visible in the counters.
    sharded_replicated = _serve_sharded(
        SHARDS, SHARDS * roomy, replicas=REPLICAS,
    )
    from repro.engine.faults import FaultPlan, FaultRule
    sharded_failover = _serve_sharded(
        SHARDS, SHARDS * roomy, replicas=REPLICAS,
        faults=FaultPlan([
            FaultRule(site="shard.execute", kind="exception", times=1),
        ]),
    )

    # Concurrent serving: the skewed grid sharded and put behind the
    # admission front-end.  One closed-loop client is the single-caller
    # baseline through the identical code path; eight clients measure
    # aggregate throughput at equal pool size; the saturation row
    # drives an open-loop burst into a tiny queue behind one execution
    # thread, so the front-end must shed (bounded p95, zero
    # AdmissionError) instead of queueing without bound.
    # A roomy admission budget: these two rows measure execution
    # throughput, not admission throttling (the saturation row below
    # exercises that), so the budget must admit all eight clients.
    serve_1client = _serve_concurrent(
        1, SHARDS * skew_budget, admission_bytes=64 << 20)
    concurrent_serve = _serve_concurrent(
        8, SHARDS * skew_budget, admission_bytes=64 << 20)
    saturated_serve = _serve_concurrent(
        8, SHARDS * skew_budget, open_loop_qps=2000.0, queue_depth=4,
        deadline_seconds=0.25, admission_bytes=4 << 20,
        max_concurrency=1,
    )

    reports = {
        "cold_1": cold_1, "cold_k": cold_k,
        "cold_k_python": cold_k_python,
        "warm_1": warm_1, "tight_k": tight_k,
        "restart_warm": restart_warm,
        "skewed_per_tile": skewed_per_tile,
        "skewed_batched": skewed_batched,
        "skewed_batched_python": skewed_batched_python,
        "skewed_batched_pickled": skewed_batched_pickled,
        "sharded_k": sharded_k,
        "sharded_replicated": sharded_replicated,
        "sharded_failover": sharded_failover,
        "serve_1client": serve_1client,
        "concurrent_serve": concurrent_serve,
        "saturated_serve": saturated_serve,
    }
    labels = {
        "cold_1": "cold cache, 1 worker",
        "cold_k": f"cold cache, {WORKERS} workers",
        "cold_k_python": f"cold, {WORKERS} wk, python+pickle",
        "warm_1": "warm cache, 1 worker",
        "tight_k": f"tight budget, {WORKERS} workers",
        "restart_warm": f"restart warm, {WORKERS} workers",
        "skewed_per_tile": f"skewed grid, per-tile, {WORKERS} workers",
        "skewed_batched": f"skewed grid, batched, {WORKERS} workers",
        "skewed_batched_python": f"skewed batched, {WORKERS} wk, python",
        "skewed_batched_pickled":
            f"skewed batched, {WORKERS} wk, pickled",
        "sharded_k": f"{SHARDS} shards, {WORKERS} workers shared",
        "sharded_replicated":
            f"{SHARDS} shards x {REPLICAS} replicas, healthy",
        "sharded_failover":
            f"{SHARDS} shards x {REPLICAS} replicas, 1 outage",
        "serve_1client": f"skewed, {SHARDS} shards, 1 client",
        "concurrent_serve": f"skewed, {SHARDS} shards, 8 clients",
        "saturated_serve":
            f"skewed, {SHARDS} shards, open-loop burst",
    }

    rows = []
    for key in ("cold_1", "cold_k", "cold_k_python", "warm_1",
                "tight_k", "restart_warm", "skewed_per_tile",
                "skewed_batched", "skewed_batched_python",
                "skewed_batched_pickled", "sharded_k",
                "sharded_replicated", "sharded_failover",
                "serve_1client", "concurrent_serve",
                "saturated_serve"):
        rep = reports[key]
        m = rep["metrics"]
        rows.append([
            labels[key],
            rep["queries"],
            m["cache_hits"],
            rep["artifacts"]["hits"],
            rep["artifacts"]["disk_restores"],
            m["pages_read"],
            m["spilled_rects"],
            m["budget_high_water_bytes"],
            fmt_seconds(rep["sim_wall_seconds"]),
            f"{rep['queries_per_sec_sim']:.1f}",
            fmt_seconds(rep["wall_seconds"]),
            fmt_seconds(rep["latency_p95_seconds"]),
        ])
    emit(
        "engine_throughput",
        format_table(
            ["Configuration", "Queries", "Cache hits", "Tile hits",
             "Restores", "Pages read", "Spilled", "Budget HW B",
             "Sim s", "Sim q/s", "Wall s", "p95"],
            rows,
            title=(
                f"Engine serving throughput — {DATASET} "
                f"(scale {bench_scale().name}), {N_QUERIES}-query "
                f"mixed workload, budgets roomy={roomy}B tight={tight}B"
            ),
        ),
    )

    # The pre-PR comparison is only meaningful at the scale the
    # baseline was recorded; at other scales the block is null rather
    # than a fabricated cross-scale ratio.
    speedup = None
    if scale.name == PRE_PR_BASELINE_SCALE:
        speedup = {
            "config": "cold_k",
            "queries_per_sec_sim": (
                cold_k["queries_per_sec_sim"]
                / PRE_PR_BASELINE["cold_k"]["queries_per_sec_sim"]
            ),
            "wall_clock": (
                PRE_PR_BASELINE["cold_k"]["wall_seconds"]
                / cold_k["wall_seconds"]
                if cold_k["wall_seconds"] > 0 else float("inf")
            ),
            "baseline_scale": PRE_PR_BASELINE_SCALE,
        }
    kernel_speedup = None
    if scale.name == PRE_KERNEL_BASELINE_SCALE:
        kernel_speedup = {
            key: (
                reports[key]["queries_per_sec_wall"]
                / base["queries_per_sec_wall"]
            )
            for key, base in PRE_KERNEL_BASELINE.items()
        }
        kernel_speedup["baseline_scale"] = PRE_KERNEL_BASELINE_SCALE
    emit_json("BENCH_engine_throughput.json", {
        "bench": "engine_throughput",
        "dataset": DATASET,
        "scale": scale.name,
        "n_queries": N_QUERIES,
        "workers": WORKERS,
        "budget_roomy_bytes": roomy,
        "budget_tight_bytes": tight,
        "configurations": {k: _json_row(r) for k, r in reports.items()},
        "pre_pr_baseline": PRE_PR_BASELINE,
        "parallel_speedup_vs_pre_pr": speedup,
        "pre_kernel_baseline": PRE_KERNEL_BASELINE,
        "wall_speedup_vs_pre_kernel": kernel_speedup,
    })

    # The subsystem's reason to exist, asserted.
    assert cold_k["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "partitioned parallel execution must beat the cold "
        "single-worker baseline"
    )
    assert warm_1["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "the warm result cache must beat the cold baseline"
    )
    assert warm_1["metrics"]["cache_hits"] > 0
    # Repeats of partitioned plans skip the distribute phase even with
    # the result cache off.
    assert cold_k["artifacts"]["hits"] > 0, (
        "repeated partitioned plans must reuse cached tile artifacts"
    )
    # The memory contract, asserted: the tight budget forces spilling
    # yet changes no answers.
    assert tight_k["metrics"]["spilled_rects"] > 0, (
        "a budget below the tile footprint must spill"
    )
    assert tight_k["metrics"]["budget_high_water_bytes"] > 0
    # Identical workload => identical answers in every configuration.
    assert (cold_1["pairs_returned"] == cold_k["pairs_returned"]
            == warm_1["pairs_returned"] == tight_k["pairs_returned"]
            == restart_warm["pairs_returned"])
    # The restart-warm engine rebuilt its state from the sidecar, not
    # from scratch.
    assert restart_warm["artifacts"]["disk_restores"] > 0, (
        "a restarted engine must restore persisted artifacts"
    )
    # Batching must beat the per-tile (inline-cutoff) baseline on the
    # skewed grid: small tiles reach the pool instead of sweeping
    # serially on the coordinator.
    assert (skewed_per_tile["pairs_returned"]
            == skewed_batched["pairs_returned"])
    assert skewed_batched["pool"]["tiles_dispatched"] > (
        skewed_batched["pool"]["tasks_dispatched"]
    ), "skewed batched config must ship multi-tile tasks"
    assert (skewed_batched["queries_per_sec_sim"]
            > skewed_per_tile["queries_per_sec_sim"]), (
        "batched tile shipping must improve simulated q/s on a "
        "skewed grid"
    )
    # The sharded differential contract: scatter/gather with boundary
    # dedup returns exactly the single-engine answers, and window
    # queries actually prune shards.
    assert sharded_k["pairs_returned"] == cold_k["pairs_returned"], (
        "sharded serving must return bit-identical pair totals"
    )
    assert sharded_k["metrics"]["shards"] == SHARDS
    assert sharded_k["metrics"]["shards_pruned_total"] > 0, (
        "window queries must prune non-overlapping shards"
    )
    # The availability contract: replication changes no answers, and a
    # replica outage is absorbed (identical pairs, failover counted).
    assert (sharded_replicated["pairs_returned"]
            == sharded_failover["pairs_returned"]
            == cold_k["pairs_returned"]), (
        "replicated sharded serving must return identical pair totals"
    )
    assert sharded_replicated["metrics"]["replicas"] == REPLICAS
    assert sharded_replicated["metrics"]["failovers"] == 0
    assert sharded_failover["metrics"]["failovers"] >= 1, (
        "the injected replica outage must surface as a failover"
    )
    # By workload end the probe traffic has already healed the
    # replica — the failure and the recovery both stay on the books.
    assert sharded_failover["metrics"]["replica_failures"] >= 1
    assert sharded_failover["metrics"]["replica_recoveries"] >= 1
    # Kernel parity: the ablation rows answer the same workload and
    # charge the same simulated cost — the kernels and the shipping
    # transport change wall clock only.
    assert (cold_k_python["pairs_returned"] == cold_k["pairs_returned"]
            and cold_k_python["sim_wall_seconds"]
            == cold_k["sim_wall_seconds"]), (
        "python-kernel ablation must be accounting-identical to numpy"
    )
    assert (skewed_batched_python["pairs_returned"]
            == skewed_batched_pickled["pairs_returned"]
            == skewed_batched["pairs_returned"])
    # The concurrent front-end's contract: every query served (no
    # shedding at a sane budget), identical answers to the serial
    # sharded run, and zero admission-budget leak once drained.
    for rep in (serve_1client, concurrent_serve):
        assert rep["served"] == rep["queries"]
        assert rep["serve"]["shed"] == 0
        assert rep["serve"]["expired"] == 0
        assert rep["serve"]["rejected"] == 0
        assert rep["serve"]["errors"] == 0
        assert rep["serve"]["admission"]["in_use_bytes"] == 0, (
            "drained front-end must hold no admission bytes"
        )
    assert (concurrent_serve["pairs_returned"]
            == serve_1client["pairs_returned"]
            == skewed_batched["pairs_returned"]), (
        "concurrent serving must return the single-engine skewed "
        "workload's exact pair totals"
    )
    # Saturation: the open-loop burst into a tiny queue must shed
    # (graceful overload) rather than reject or queue without bound,
    # and the served tail stays bounded by deadline + service time.
    assert saturated_serve["serve"]["shed"] > 0, (
        "the saturation run must load-shed"
    )
    assert saturated_serve["serve"]["rejected"] == 0
    assert saturated_serve["serve"]["errors"] == 0
    assert saturated_serve["serve"]["admission"]["in_use_bytes"] == 0
    assert saturated_serve["latency_p95_seconds"] < 1.0, (
        "served p95 under saturation must stay bounded"
    )
    # Starvation gate: priority aging bounds how long a parked batch
    # query can sit in the queue.  Every waiter resolves within the
    # 0.25 s deadline (grant, shed, or expiry), so a batch max queue
    # age anywhere near a second means aging stopped working.
    batch_age = saturated_serve["serve"]["queue_age_max_seconds"]["batch"]
    assert batch_age < 1.0, (
        f"batch queue age must stay bounded under saturation "
        f"(got {batch_age:.3f}s)"
    )
    if scale.name == PRE_KERNEL_BASELINE_SCALE:
        # Multiplexing eight clients must not tax the front-end: even
        # on a one-core box (where aggregate wall throughput of
        # CPU-bound work is fixed) the concurrent row stays close to
        # the single caller.
        assert (concurrent_serve["queries_per_sec_wall"]
                > 0.7 * serve_1client["queries_per_sec_wall"]), (
            "concurrent serving must not cost material aggregate "
            "throughput"
        )
        if (os.cpu_count() or 1) >= 2:
            # With real cores behind the worker pool, overlapping
            # in-flight queries must raise aggregate throughput: the
            # single caller leaves workers idle during its GIL-bound
            # coordinator phases; eight clients fill them.  On one
            # core the comparison is physically meaningless, so it is
            # skipped (like the scale gate above).
            assert (concurrent_serve["queries_per_sec_wall"]
                    > serve_1client["queries_per_sec_wall"]), (
                "8 concurrent clients must out-serve a single caller"
            )
    if speedup is not None:
        # The parallel-rework acceptance bar, on deterministic
        # simulated numbers at the scale the baseline was recorded.
        assert speedup["queries_per_sec_sim"] >= 2.0, (
            f"multi-worker config must serve >= 2x the pre-rework "
            f"queries/sec (got {speedup['queries_per_sec_sim']:.2f}x)"
        )
    if kernel_speedup is not None:
        # The kernel/shm-rework acceptance bar: wall-clock throughput
        # (simulated numbers are invariant by construction).
        for key in PRE_KERNEL_BASELINE:
            assert kernel_speedup[key] >= 2.0, (
                f"{key}: numpy kernel + shm shipping must serve >= 2x "
                f"the pre-rework wall queries/sec "
                f"(got {kernel_speedup[key]:.2f}x)"
            )


if __name__ == "__main__":
    test_engine_throughput()
