"""Engine serving throughput: cold vs. warm caches, 1 vs. K workers,
roomy vs. tight memory budgets.

The serving-layer claim, measured: the same mixed workload (dense
overlays, localized window joins, ~40% verbatim repeats) is replayed
against fresh engines in four configurations —

* **cold, 1 worker** with the result cache disabled: every query
  re-plans and re-executes, the one-shot baseline;
* **cold, K workers**, cache still disabled: partitioned parallel
  execution shortens the heavy overlays;
* **warm, 1 worker**: the LRU result cache serves the repeats;
* **tight budget, K workers**: the memory budget is squeezed below the
  tile footprint, so partitioned tiles spill to disk — correctness is
  unchanged (identical pair totals) and the spill traffic shows up in
  the metrics.

The first three configurations run under a budget large enough to hold
the partitioned tiles in memory, isolating the parallelism/caching
comparison from spill effects.  Throughput is reported against the
simulated clock (machine-trio faithful) with real wall seconds
alongside.  The bench asserts the ordering the engine exists to
deliver: multi-worker and warm-cache beat the cold single-worker
baseline, and the budgeted run spills without changing a single
answer.
"""

from __future__ import annotations

from repro.data.datasets import build_dataset
from repro.engine.workload import (
    engine_for_dataset,
    make_workload,
    run_workload,
)
from repro.experiments.report import fmt_seconds, format_table
from repro.geom.rect import RECT_BYTES

from common import bench_scale, emit

DATASET = "NJ"
N_QUERIES = 30
WORKERS = 4


def _serve(workers: int, cache_capacity: int, memory_bytes: int) -> dict:
    scale = bench_scale()
    engine = engine_for_dataset(
        DATASET, scale, workers=workers, cache_capacity=cache_capacity,
        memory_bytes=memory_bytes,
    )
    queries = make_workload(
        engine.catalog.get("roads").universe, N_QUERIES, seed=7,
    )
    return run_workload(engine, queries)


def test_engine_throughput():
    scale = bench_scale()
    ds = build_dataset(DATASET, scale)
    data_bytes = (len(ds.roads) + len(ds.hydro)) * RECT_BYTES
    # Roomy: tiles, pool and caches all fit — the pre-spill regime.
    roomy = 8 * data_bytes + scale.buffer_pool_bytes
    # Tight: well below the tile footprint, forcing the spill path
    # (but above the admission-control floor).
    tight = max(4096, data_bytes // 4)

    cold_1 = _serve(workers=1, cache_capacity=0, memory_bytes=roomy)
    cold_k = _serve(workers=WORKERS, cache_capacity=0, memory_bytes=roomy)
    warm_1 = _serve(workers=1, cache_capacity=64, memory_bytes=roomy)
    tight_k = _serve(workers=WORKERS, cache_capacity=0, memory_bytes=tight)

    rows = []
    for label, rep in (
        ("cold cache, 1 worker", cold_1),
        (f"cold cache, {WORKERS} workers", cold_k),
        ("warm cache, 1 worker", warm_1),
        (f"tight budget, {WORKERS} workers", tight_k),
    ):
        m = rep["metrics"]
        rows.append([
            label,
            rep["queries"],
            m["cache_hits"],
            m["pages_read"],
            m["spilled_rects"],
            m["budget_high_water_bytes"],
            fmt_seconds(rep["sim_wall_seconds"]),
            f"{rep['queries_per_sec_sim']:.1f}",
            fmt_seconds(rep["wall_seconds"]),
        ])
    emit(
        "engine_throughput",
        format_table(
            ["Configuration", "Queries", "Cache hits", "Pages read",
             "Spilled", "Budget HW B", "Sim s", "Sim q/s", "Wall s"],
            rows,
            title=(
                f"Engine serving throughput — {DATASET} "
                f"(scale {bench_scale().name}), {N_QUERIES}-query "
                f"mixed workload, budgets roomy={roomy}B tight={tight}B"
            ),
        ),
    )

    # The subsystem's reason to exist, asserted.
    assert cold_k["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "partitioned parallel execution must beat the cold "
        "single-worker baseline"
    )
    assert warm_1["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "the warm result cache must beat the cold baseline"
    )
    assert warm_1["metrics"]["cache_hits"] > 0
    # The memory contract, asserted: the tight budget forces spilling
    # yet changes no answers.
    assert tight_k["metrics"]["spilled_rects"] > 0, (
        "a budget below the tile footprint must spill"
    )
    assert tight_k["metrics"]["budget_high_water_bytes"] > 0
    # Identical workload => identical answers in every configuration.
    assert (cold_1["pairs_returned"] == cold_k["pairs_returned"]
            == warm_1["pairs_returned"] == tight_k["pairs_returned"])


if __name__ == "__main__":
    test_engine_throughput()
