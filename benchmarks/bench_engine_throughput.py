"""Engine serving throughput: cold vs. warm caches, 1 vs. K workers.

The serving-layer claim, measured: the same mixed workload (dense
overlays, localized window joins, ~40% verbatim repeats) is replayed
against fresh engines in three configurations —

* **cold, 1 worker** with the result cache disabled: every query
  re-plans and re-executes, the one-shot baseline;
* **cold, K workers**, cache still disabled: partitioned parallel
  execution shortens the heavy overlays;
* **warm, 1 worker**: the LRU result cache serves the repeats.

Throughput is reported against the simulated clock (machine-trio
faithful) with real wall seconds alongside.  The bench asserts the
ordering the engine exists to deliver: both the multi-worker and the
warm-cache configurations beat the cold single-worker baseline.
"""

from __future__ import annotations

from repro.engine.workload import (
    engine_for_dataset,
    make_workload,
    run_workload,
)
from repro.experiments.report import fmt_seconds, format_table

from common import bench_scale, emit

DATASET = "NJ"
N_QUERIES = 30
WORKERS = 4


def _serve(workers: int, cache_capacity: int) -> dict:
    scale = bench_scale()
    engine = engine_for_dataset(
        DATASET, scale, workers=workers, cache_capacity=cache_capacity,
    )
    queries = make_workload(
        engine.catalog.get("roads").universe, N_QUERIES, seed=7,
    )
    return run_workload(engine, queries)


def test_engine_throughput():
    cold_1 = _serve(workers=1, cache_capacity=0)
    cold_k = _serve(workers=WORKERS, cache_capacity=0)
    warm_1 = _serve(workers=1, cache_capacity=64)

    rows = []
    for label, rep in (
        (f"cold cache, 1 worker", cold_1),
        (f"cold cache, {WORKERS} workers", cold_k),
        (f"warm cache, 1 worker", warm_1),
    ):
        m = rep["metrics"]
        rows.append([
            label,
            rep["queries"],
            m["cache_hits"],
            m["pages_read"],
            fmt_seconds(rep["sim_wall_seconds"]),
            f"{rep['queries_per_sec_sim']:.1f}",
            fmt_seconds(rep["wall_seconds"]),
        ])
    emit(
        "engine_throughput",
        format_table(
            ["Configuration", "Queries", "Cache hits", "Pages read",
             "Sim s", "Sim q/s", "Wall s"],
            rows,
            title=(
                f"Engine serving throughput — {DATASET} "
                f"(scale {bench_scale().name}), {N_QUERIES}-query "
                "mixed workload"
            ),
        ),
    )

    # The subsystem's reason to exist, asserted.
    assert cold_k["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "partitioned parallel execution must beat the cold "
        "single-worker baseline"
    )
    assert warm_1["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "the warm result cache must beat the cold baseline"
    )
    assert warm_1["metrics"]["cache_hits"] > 0
    # Identical workload => identical answers in every configuration.
    assert (cold_1["pairs_returned"] == cold_k["pairs_returned"]
            == warm_1["pairs_returned"])


if __name__ == "__main__":
    test_engine_throughput()
