"""Engine serving throughput: cold vs. warm caches, 1 vs. K workers,
roomy vs. tight memory budgets.

The serving-layer claim, measured: the same mixed workload (dense
overlays, localized window joins, ~40% verbatim repeats) is replayed
against fresh engines in four configurations —

* **cold, 1 worker** with the result cache disabled: every query
  re-plans and re-executes, the one-shot baseline;
* **cold, K workers**, result cache still disabled: partitioned
  execution on the persistent worker pool shortens the heavy overlays,
  and repeats of partitioned plans hit the partition-artifact cache
  (the distribute phase runs once per distinct plan, not per query);
* **warm, 1 worker**: the LRU result cache serves the repeats;
* **tight budget, K workers**: the memory budget is squeezed below the
  tile footprint, so partitioned tiles spill to disk — correctness is
  unchanged (identical pair totals) and the spill traffic shows up in
  the metrics.

The first three configurations run under a budget large enough to hold
the partitioned tiles in memory, isolating the parallelism/caching
comparison from spill effects.  Throughput is reported against the
simulated clock (machine-trio faithful) with real wall seconds and
tail latency (p95 over the metrics reservoir) alongside.

Besides the txt table the bench emits ``BENCH_engine_throughput.json``
at the repo root — configuration, per-run wall/simulated clocks,
queries/sec, spill, pool and artifact-cache stats — and compares the
multi-worker configuration against the recorded pre-parallel-rework
baseline (commit 3d530e0): the rework's acceptance bar is >= 2x
queries/sec there, asserted at the default scale where the simulated
numbers are deterministic.
"""

from __future__ import annotations

from repro.data.datasets import build_dataset
from repro.engine.workload import (
    engine_for_dataset,
    make_workload,
    run_workload,
)
from repro.experiments.report import fmt_seconds, format_table
from repro.geom.rect import RECT_BYTES

from common import bench_scale, emit, emit_json

DATASET = "NJ"
N_QUERIES = 30
WORKERS = 4

#: Pre-rework numbers for the same bench on this machine (commit
#: 3d530e0: per-query ThreadPoolExecutor, per-pair callback sweeps, no
#: artifact reuse), recorded at the default 1/256 scale.  The simulated
#: figures are deterministic, so the >= 2x acceptance bar is asserted
#: against them; wall figures are informational.
PRE_PR_BASELINE_SCALE = "1/256"
PRE_PR_BASELINE = {
    "cold_k": {"queries_per_sec_sim": 341.7, "wall_seconds": 0.0572},
    "cold_1": {"queries_per_sec_sim": 226.7, "wall_seconds": 0.0426},
    "warm_1": {"queries_per_sec_sim": 549.5, "wall_seconds": 0.0160},
    "tight_k": {"queries_per_sec_sim": 143.9, "wall_seconds": 0.0556},
}


def _serve(workers: int, cache_capacity: int, memory_bytes: int) -> dict:
    scale = bench_scale()
    engine = engine_for_dataset(
        DATASET, scale, workers=workers, cache_capacity=cache_capacity,
        memory_bytes=memory_bytes,
    )
    queries = make_workload(
        engine.catalog.get("roads").universe, N_QUERIES, seed=7,
    )
    report = run_workload(engine, queries)
    engine.close()
    return report


def _json_row(rep: dict) -> dict:
    m = rep["metrics"]
    return {
        "queries": rep["queries"],
        "pairs_returned": rep["pairs_returned"],
        "wall_seconds": rep["wall_seconds"],
        "sim_wall_seconds": rep["sim_wall_seconds"],
        "queries_per_sec_wall": rep["queries_per_sec_wall"],
        "queries_per_sec_sim": rep["queries_per_sec_sim"],
        "cache_hits": m["cache_hits"],
        "artifact_hits": rep["artifacts"]["hits"],
        "artifact_entries": rep["artifacts"]["entries"],
        "artifact_bytes": rep["artifacts"]["bytes"],
        "pages_read": m["pages_read"],
        "spilled_rects": m["spilled_rects"],
        "budget_high_water_bytes": m["budget_high_water_bytes"],
        "latency_p50_seconds": rep["latency_p50_seconds"],
        "latency_p95_seconds": rep["latency_p95_seconds"],
        "pool": rep["pool"],
        "per_strategy": m["per_strategy"],
    }


def test_engine_throughput():
    scale = bench_scale()
    ds = build_dataset(DATASET, scale)
    data_bytes = (len(ds.roads) + len(ds.hydro)) * RECT_BYTES
    # Roomy: tiles, pool and caches all fit — the pre-spill regime.
    roomy = 8 * data_bytes + scale.buffer_pool_bytes
    # Tight: well below the tile footprint, forcing the spill path
    # (but above the admission-control floor).
    tight = max(4096, data_bytes // 4)

    cold_1 = _serve(workers=1, cache_capacity=0, memory_bytes=roomy)
    cold_k = _serve(workers=WORKERS, cache_capacity=0, memory_bytes=roomy)
    warm_1 = _serve(workers=1, cache_capacity=64, memory_bytes=roomy)
    tight_k = _serve(workers=WORKERS, cache_capacity=0, memory_bytes=tight)

    reports = {
        "cold_1": cold_1, "cold_k": cold_k,
        "warm_1": warm_1, "tight_k": tight_k,
    }
    labels = {
        "cold_1": "cold cache, 1 worker",
        "cold_k": f"cold cache, {WORKERS} workers",
        "warm_1": "warm cache, 1 worker",
        "tight_k": f"tight budget, {WORKERS} workers",
    }

    rows = []
    for key in ("cold_1", "cold_k", "warm_1", "tight_k"):
        rep = reports[key]
        m = rep["metrics"]
        rows.append([
            labels[key],
            rep["queries"],
            m["cache_hits"],
            rep["artifacts"]["hits"],
            m["pages_read"],
            m["spilled_rects"],
            m["budget_high_water_bytes"],
            fmt_seconds(rep["sim_wall_seconds"]),
            f"{rep['queries_per_sec_sim']:.1f}",
            fmt_seconds(rep["wall_seconds"]),
            fmt_seconds(rep["latency_p95_seconds"]),
        ])
    emit(
        "engine_throughput",
        format_table(
            ["Configuration", "Queries", "Cache hits", "Tile hits",
             "Pages read", "Spilled", "Budget HW B", "Sim s", "Sim q/s",
             "Wall s", "p95"],
            rows,
            title=(
                f"Engine serving throughput — {DATASET} "
                f"(scale {bench_scale().name}), {N_QUERIES}-query "
                f"mixed workload, budgets roomy={roomy}B tight={tight}B"
            ),
        ),
    )

    # The pre-PR comparison is only meaningful at the scale the
    # baseline was recorded; at other scales the block is null rather
    # than a fabricated cross-scale ratio.
    speedup = None
    if scale.name == PRE_PR_BASELINE_SCALE:
        speedup = {
            "config": "cold_k",
            "queries_per_sec_sim": (
                cold_k["queries_per_sec_sim"]
                / PRE_PR_BASELINE["cold_k"]["queries_per_sec_sim"]
            ),
            "wall_clock": (
                PRE_PR_BASELINE["cold_k"]["wall_seconds"]
                / cold_k["wall_seconds"]
                if cold_k["wall_seconds"] > 0 else float("inf")
            ),
            "baseline_scale": PRE_PR_BASELINE_SCALE,
        }
    emit_json("BENCH_engine_throughput.json", {
        "bench": "engine_throughput",
        "dataset": DATASET,
        "scale": scale.name,
        "n_queries": N_QUERIES,
        "workers": WORKERS,
        "budget_roomy_bytes": roomy,
        "budget_tight_bytes": tight,
        "configurations": {k: _json_row(r) for k, r in reports.items()},
        "pre_pr_baseline": PRE_PR_BASELINE,
        "parallel_speedup_vs_pre_pr": speedup,
    })

    # The subsystem's reason to exist, asserted.
    assert cold_k["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "partitioned parallel execution must beat the cold "
        "single-worker baseline"
    )
    assert warm_1["sim_wall_seconds"] < cold_1["sim_wall_seconds"], (
        "the warm result cache must beat the cold baseline"
    )
    assert warm_1["metrics"]["cache_hits"] > 0
    # Repeats of partitioned plans skip the distribute phase even with
    # the result cache off.
    assert cold_k["artifacts"]["hits"] > 0, (
        "repeated partitioned plans must reuse cached tile artifacts"
    )
    # The memory contract, asserted: the tight budget forces spilling
    # yet changes no answers.
    assert tight_k["metrics"]["spilled_rects"] > 0, (
        "a budget below the tile footprint must spill"
    )
    assert tight_k["metrics"]["budget_high_water_bytes"] > 0
    # Identical workload => identical answers in every configuration.
    assert (cold_1["pairs_returned"] == cold_k["pairs_returned"]
            == warm_1["pairs_returned"] == tight_k["pairs_returned"])
    if speedup is not None:
        # The parallel-rework acceptance bar, on deterministic
        # simulated numbers at the scale the baseline was recorded.
        assert speedup["queries_per_sec_sim"] >= 2.0, (
            f"multi-worker config must serve >= 2x the pre-rework "
            f"queries/sec (got {speedup['queries_per_sec_sim']:.2f}x)"
        )


if __name__ == "__main__":
    test_engine_throughput()
