"""CI guard: fail when engine serving throughput regresses.

Compares a fresh ``BENCH_engine_throughput.json`` (written by
``bench_engine_throughput.py``) against a committed baseline
(``benchmarks/baseline_engine_throughput.json``, recorded at quick
scale — regenerate it with ``REPRO_BENCH_SCALE=quick`` after an
intentional perf change).  Two per-configuration gates:

* *simulated* queries/sec, tight (default 30%): deterministic for a
  given code state, so a drop is a code change, not CI-machine noise;
* *wall-clock* queries/sec, loose (default 75%): noisy on shared CI
  machines, so only order-of-magnitude collapses fail — a pool that
  stopped parallelizing, tile shipping falling back to pickling
  everywhere, the vectorized kernel silently gone.

A third, machine-independent gate runs with ``--asymptotic``: the
batched sweep kernel is timed in *simulated ops* over a ladder of
input sizes and the cost curve is fitted (tiny least-squares fitter,
no third-party deps) against the classic complexity classes.  The
sweep must stay in ``n log n``: an accidental quadratic regression
changes the *class*, which no fixed-percentage gate can see at small
bench sizes.

Usage::

    python benchmarks/check_engine_regression.py \
        [--bench BENCH_engine_throughput.json] \
        [--baseline benchmarks/baseline_engine_throughput.json] \
        [--tolerance 0.30] [--wall-tolerance 0.75] \
        [--asymptotic] [--expect-class nlogn]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import random
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def check(bench: dict, baseline: dict, tolerance: float,
          wall_tolerance: float = 0.75) -> list:
    """Return a list of human-readable failures (empty == pass)."""
    failures = []
    if bench.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: bench ran at {bench.get('scale')!r} but "
            f"the baseline was recorded at {baseline.get('scale')!r}"
        )
        return failures
    floor = 1.0 - tolerance
    wall_floor = 1.0 - wall_tolerance
    for key, base_cfg in baseline["configurations"].items():
        cfg = bench["configurations"].get(key)
        if cfg is None:
            failures.append(f"configuration {key!r} missing from bench")
            continue
        base_qps = base_cfg["queries_per_sec_sim"]
        qps = cfg["queries_per_sec_sim"]
        if base_qps > 0 and qps < floor * base_qps:
            failures.append(
                f"{key}: {qps:.1f} sim q/s is "
                f"{(1 - qps / base_qps):.0%} below the baseline "
                f"{base_qps:.1f} (tolerance {tolerance:.0%})"
            )
        base_wall = base_cfg.get("queries_per_sec_wall", 0.0)
        wall = cfg.get("queries_per_sec_wall", 0.0)
        if base_wall > 0 and wall and wall < wall_floor * base_wall:
            failures.append(
                f"{key}: {wall:.1f} wall q/s is "
                f"{(1 - wall / base_wall):.0%} below the baseline "
                f"{base_wall:.1f} (wall tolerance "
                f"{wall_tolerance:.0%})"
            )
    return failures


# -- asymptotic gate ---------------------------------------------------------

#: Candidate cost curves, simplest first.  The fitter prefers an
#: earlier (simpler) class whenever its fit is almost as good — the
#: same simplicity bias the big_o package applies, in ~20 lines.
COMPLEXITY_CLASSES = (
    ("constant", lambda n: 1.0),
    ("logn", lambda n: math.log2(n)),
    ("linear", lambda n: float(n)),
    ("nlogn", lambda n: n * math.log2(n)),
    ("quadratic", lambda n: float(n) * n),
)

CLASS_RANK = {name: i for i, (name, _) in enumerate(COMPLEXITY_CLASSES)}


def fit_complexity(ns, costs, simplicity_bias: float = 0.05) -> str:
    """Least-squares fit of ``costs`` against each candidate curve.

    Each class has one free scale coefficient, fitted on *relative*
    errors (``a*f(n)/cost - 1``) so every sample counts equally — with
    absolute residuals the largest ``n`` dominates and everything on a
    growing curve looks like the steepest class.  The closed form:
    with ``u = f(n)/cost``, minimizing ``sum((a*u - 1)^2)`` gives
    ``a = sum(u)/sum(u^2)``.  Among near-ties (within
    ``simplicity_bias`` of the best mean squared relative error) the
    simplest class wins — measured curves always fit a *more* complex
    class at least as well, so without the bias everything drifts
    toward quadratic.
    """
    if len(ns) != len(costs) or len(ns) < 3:
        raise ValueError("need >= 3 (n, cost) samples")
    if any(c <= 0 for c in costs):
        raise ValueError("costs must be positive")
    fits = []
    for name, f in COMPLEXITY_CLASSES:
        us = [f(n) / c for n, c in zip(ns, costs)]
        a = sum(us) / sum(u * u for u in us)
        resid = sum((a * u - 1.0) ** 2 for u in us) / len(us)
        fits.append((name, resid))
    best = min(r for _, r in fits)
    for name, r in fits:  # simplest-first order
        if r <= best + simplicity_bias:
            return name
    return fits[-1][0]


def measure_sweep_scaling(kernel: str, sizes, seed: int = 97):
    """Simulated sweep ops per input size, at constant spatial density.

    Rect extents shrink with ``1/sqrt(n)`` so the expected output pair
    count stays linear in ``n`` — the measured curve is then the
    *kernel's* complexity, not the output's.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.kernels import sweep_pairs_batched
    from repro.geom.rect import Rect

    class _Ops:
        def __init__(self):
            self.cpu_ops = 0

        def charge(self, category, ops):
            self.cpu_ops += max(0, ops)

    costs = []
    for n in sizes:
        rng = random.Random(seed)
        side = 1.2 / math.sqrt(n)
        rects_a = []
        rects_b = []
        for out, base in ((rects_a, 0), (rects_b, 10 ** 6)):
            for i in range(n):
                x, y = rng.random(), rng.random()
                out.append(Rect(x, x + side, y, y + side, base + i))
        env = _Ops()
        sweep_pairs_batched(kernel, rects_a, rects_b, env)
        costs.append(float(env.cpu_ops))
    return costs


def check_asymptotics(expect: str, kernels=("python",),
                      sizes=(1000, 2000, 4000, 8000, 16000)) -> list:
    """Fit each kernel's sweep-cost curve; fail past ``expect``."""
    failures = []
    limit = CLASS_RANK[expect]
    for kernel in kernels:
        costs = measure_sweep_scaling(kernel, sizes)
        fitted = fit_complexity(list(sizes), costs)
        if CLASS_RANK[fitted] > limit:
            failures.append(
                f"{kernel} kernel sweep cost fits O({fitted}) over "
                f"n={list(sizes)} (ops={[int(c) for c in costs]}); "
                f"expected O({expect}) or better"
            )
        else:
            print(f"asymptotics ok: {kernel} kernel sweep cost fits "
                  f"O({fitted}) (limit O({expect}))")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine_throughput.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path,
        default=REPO_ROOT / "benchmarks"
        / "baseline_engine_throughput.json",
    )
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--wall-tolerance", type=float, default=0.75)
    parser.add_argument(
        "--asymptotic", action="store_true",
        help=(
            "also fit the sweep kernels' simulated-op cost curves "
            "over an input-size ladder and fail when one leaves its "
            "complexity class"
        ),
    )
    parser.add_argument(
        "--expect-class", default="nlogn",
        choices=[name for name, _ in COMPLEXITY_CLASSES],
        help="worst acceptable fitted class (default: nlogn)",
    )
    args = parser.parse_args(argv)

    bench = json.loads(args.bench.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(bench, baseline, args.tolerance,
                     args.wall_tolerance)
    if args.asymptotic:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.core.kernels import numpy_available

        kernels = ("python", "numpy") if numpy_available() \
            else ("python",)
        failures += check_asymptotics(args.expect_class, kernels)
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    qps = {
        k: round(v["queries_per_sec_sim"], 1)
        for k, v in bench["configurations"].items()
    }
    print(f"throughput ok (sim q/s within {args.tolerance:.0%} "
          f"of baseline): {qps}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
