"""CI guard: fail when engine serving throughput regresses.

Compares a fresh ``BENCH_engine_throughput.json`` (written by
``bench_engine_throughput.py``) against a committed baseline
(``benchmarks/baseline_engine_throughput.json``, recorded at quick
scale — regenerate it with ``REPRO_BENCH_SCALE=quick`` after an
intentional perf change).  Only the *simulated* queries/sec figures
are compared: they are deterministic for a given code state, so a
regression is a code change, not CI-machine noise.  The default
tolerance still allows 30% drift so harmless cost-model adjustments
don't block merges; real regressions (losing the artifact cache, a
serialized pool) show up as multiples, not percentages.

Usage::

    python benchmarks/check_engine_regression.py \
        [--bench BENCH_engine_throughput.json] \
        [--baseline benchmarks/baseline_engine_throughput.json] \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def check(bench: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of human-readable failures (empty == pass)."""
    failures = []
    if bench.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: bench ran at {bench.get('scale')!r} but "
            f"the baseline was recorded at {baseline.get('scale')!r}"
        )
        return failures
    floor = 1.0 - tolerance
    for key, base_cfg in baseline["configurations"].items():
        cfg = bench["configurations"].get(key)
        if cfg is None:
            failures.append(f"configuration {key!r} missing from bench")
            continue
        base_qps = base_cfg["queries_per_sec_sim"]
        qps = cfg["queries_per_sec_sim"]
        if base_qps > 0 and qps < floor * base_qps:
            failures.append(
                f"{key}: {qps:.1f} sim q/s is "
                f"{(1 - qps / base_qps):.0%} below the baseline "
                f"{base_qps:.1f} (tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engine_throughput.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path,
        default=REPO_ROOT / "benchmarks"
        / "baseline_engine_throughput.json",
    )
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)

    bench = json.loads(args.bench.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(bench, baseline, args.tolerance)
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    qps = {
        k: round(v["queries_per_sec_sim"], 1)
        for k, v in bench["configurations"].items()
    }
    print(f"throughput ok (sim q/s within {args.tolerance:.0%} "
          f"of baseline): {qps}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
